// Plain-text content-based pub/sub data model: publications carry d
// numeric attributes; subscriptions are conjunctions of per-attribute
// range predicates (hyper-rectangles), the model used by the paper's
// workload (and by ASPE, which encrypts exactly these shapes).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/serde.hpp"
#include "common/types.hpp"

namespace esh::filter {

struct Publication {
  PublicationId id;
  std::vector<double> attributes;

  [[nodiscard]] std::size_t dimensions() const { return attributes.size(); }
};

// Closed interval [low, high] on one attribute. An unconstrained attribute
// is represented by the full domain.
struct Range {
  double low = 0.0;
  double high = 1.0;

  [[nodiscard]] bool contains(double v) const { return v >= low && v <= high; }
  [[nodiscard]] double width() const { return high - low; }
};

struct Subscription {
  SubscriptionId id;
  SubscriberId subscriber;
  std::vector<Range> predicates;  // one per attribute

  [[nodiscard]] std::size_t dimensions() const { return predicates.size(); }

  [[nodiscard]] bool matches(const Publication& pub) const {
    if (pub.attributes.size() != predicates.size()) return false;
    for (std::size_t i = 0; i < predicates.size(); ++i) {
      if (!predicates[i].contains(pub.attributes[i])) return false;
    }
    return true;
  }
};

inline void serialize(BinaryWriter& w, const Subscription& s) {
  w.write_id(s.id);
  w.write_id(s.subscriber);
  w.write_u64(s.predicates.size());
  for (const Range& r : s.predicates) {
    w.write_f64(r.low);
    w.write_f64(r.high);
  }
}

inline Subscription deserialize_subscription(BinaryReader& r) {
  Subscription s;
  s.id = r.read_id<SubscriptionTag>();
  s.subscriber = r.read_id<SubscriberTag>();
  const auto n = r.read_u64();
  s.predicates.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Range range;
    range.low = r.read_f64();
    range.high = r.read_f64();
    s.predicates.push_back(range);
  }
  return s;
}

}  // namespace esh::filter
