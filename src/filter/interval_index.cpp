#include "filter/interval_index.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/thread_pool.hpp"

namespace esh::filter {

namespace {

// Sentinel bounds for SoA columns past a subscription's dimension count
// (and for holes): an empty interval no attribute value can satisfy.
constexpr double kNeverLow = std::numeric_limits<double>::infinity();
constexpr double kNeverHigh = -std::numeric_limits<double>::infinity();

// reg_attr_ sentinel for zero-dimension subscriptions and holes.
constexpr std::uint32_t kNoAttribute = 0xffffffffu;

// Covering rule: the registered interval is the narrowest predicate (ties
// break on the lowest attribute index), so the index admits the fewest
// false candidates the subscription's own shape allows.
std::uint32_t registered_attribute(const Subscription& plain) {
  std::uint32_t reg = kNoAttribute;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < plain.predicates.size(); ++a) {
    const double width = plain.predicates[a].high - plain.predicates[a].low;
    if (width < best) {
      best = width;
      reg = static_cast<std::uint32_t>(a);
    }
  }
  return reg;
}

}  // namespace

IntervalIndexMatcher::IntervalIndexMatcher(cluster::CostModel cost)
    : cost_(cost) {}

void IntervalIndexMatcher::add(const AnySubscription& sub) {
  const auto& plain = std::get<Subscription>(sub);
  const std::size_t d = plain.predicates.size();
  if (d > lows_.size()) {
    lows_.resize(d, std::vector<double>(ids_.size(), kNeverLow));
    highs_.resize(d, std::vector<double>(ids_.size(), kNeverHigh));
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    ids_[slot] = plain.id;
    subscribers_[slot] = plain.subscriber;
    dims_[slot] = static_cast<std::uint32_t>(d);
    for (std::size_t a = 0; a < lows_.size(); ++a) {
      lows_[a][slot] = a < d ? plain.predicates[a].low : kNeverLow;
      highs_[a][slot] = a < d ? plain.predicates[a].high : kNeverHigh;
    }
  } else {
    slot = static_cast<std::uint32_t>(ids_.size());
    ids_.push_back(plain.id);
    subscribers_.push_back(plain.subscriber);
    dims_.push_back(static_cast<std::uint32_t>(d));
    reg_attr_.push_back(kNoAttribute);
    for (std::size_t a = 0; a < lows_.size(); ++a) {
      lows_[a].push_back(a < d ? plain.predicates[a].low : kNeverLow);
      highs_[a].push_back(a < d ? plain.predicates[a].high : kNeverHigh);
    }
  }
  reg_attr_[slot] = registered_attribute(plain);
  slot_of_[plain.id] = slot;
  predicate_count_ += d;
  max_dims_ = std::max(max_dims_, d);
  ++live_count_;
  dirty_ = true;
}

void IntervalIndexMatcher::punch_hole(std::uint32_t slot) {
  predicate_count_ -= dims_[slot];
  ids_[slot] = SubscriptionId{};
  subscribers_[slot] = SubscriberId{};
  dims_[slot] = 0;
  reg_attr_[slot] = kNoAttribute;
  for (auto& col : lows_) col[slot] = kNeverLow;
  for (auto& col : highs_) col[slot] = kNeverHigh;
  free_slots_.push_back(slot);
  --live_count_;
  dirty_ = true;
}

bool IntervalIndexMatcher::remove(SubscriptionId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  punch_hole(it->second);
  slot_of_.erase(it);
  return true;
}

std::vector<std::uint32_t> IntervalIndexMatcher::live_slots_by_id() const {
  std::vector<std::uint32_t> live;
  live.reserve(live_count_);
  for (std::uint32_t slot = 0; slot < ids_.size(); ++slot) {
    if (ids_[slot].valid()) live.push_back(slot);
  }
  // Ascending subscription id: canonical for serialization and for the
  // tree build, so every observable is slot-layout independent.
  std::sort(live.begin(), live.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return ids_[a].value() < ids_[b].value();
            });
  return live;
}

std::int32_t IntervalIndexMatcher::build_node(
    AttrTree& tree, const std::vector<TreeEntry>& entries) {
  if (entries.empty()) return -1;
  // Center on the median endpoint: the entry owning that endpoint always
  // straddles the center, so the cross list is never empty and each
  // subtree holds at most half the endpoints -- termination and O(log n)
  // depth. nth_element is fine: only the k-th order statistic's value is
  // used, which is implementation-independent.
  std::vector<double> pts;
  pts.reserve(entries.size() * 2);
  for (const TreeEntry& e : entries) {
    pts.push_back(e.low);
    pts.push_back(e.high);
  }
  const auto mid = pts.begin() + static_cast<std::ptrdiff_t>(pts.size() / 2);
  std::nth_element(pts.begin(), mid, pts.end());
  const double center = *mid;
  std::vector<TreeEntry> left;
  std::vector<TreeEntry> right;
  std::vector<TreeEntry> cross;
  for (const TreeEntry& e : entries) {
    if (e.high < center) {
      left.push_back(e);
    } else if (e.low > center) {
      right.push_back(e);
    } else {
      cross.push_back(e);
    }
  }
  const auto idx = static_cast<std::int32_t>(tree.nodes.size());
  tree.nodes.push_back(TreeNode{center, -1, -1,
                                static_cast<std::uint32_t>(tree.asc.size()),
                                static_cast<std::uint32_t>(cross.size())});
  // Cross lists ordered by value with id tie-breaks, never by slot: the
  // stabbing traversal (and the subscriber append order it produces) is
  // identical for any slot layout holding the same live set.
  std::sort(cross.begin(), cross.end(),
            [this](const TreeEntry& x, const TreeEntry& y) {
              if (x.low != y.low) return x.low < y.low;
              return ids_[x.slot].value() < ids_[y.slot].value();
            });
  tree.asc.insert(tree.asc.end(), cross.begin(), cross.end());
  std::sort(cross.begin(), cross.end(),
            [this](const TreeEntry& x, const TreeEntry& y) {
              if (x.high != y.high) return x.high > y.high;
              return ids_[x.slot].value() < ids_[y.slot].value();
            });
  tree.desc.insert(tree.desc.end(), cross.begin(), cross.end());
  const std::int32_t l = build_node(tree, left);
  const std::int32_t r = build_node(tree, right);
  tree.nodes[static_cast<std::size_t>(idx)].left = l;
  tree.nodes[static_cast<std::size_t>(idx)].right = r;
  return idx;
}

void IntervalIndexMatcher::rebuild_if_dirty() {
  if (!dirty_) return;
  const std::vector<std::uint32_t> live = live_slots_by_id();
  trees_.assign(lows_.size(), AttrTree{});
  zero_dim_slots_.clear();
  std::vector<std::vector<TreeEntry>> per_attr(lows_.size());
  for (const std::uint32_t slot : live) {
    if (dims_[slot] == 0) {
      zero_dim_slots_.push_back(slot);
      continue;
    }
    const std::uint32_t a = reg_attr_[slot];
    per_attr[a].push_back(TreeEntry{lows_[a][slot], highs_[a][slot], slot});
  }
  for (std::size_t a = 0; a < per_attr.size(); ++a) {
    build_node(trees_[a], per_attr[a]);
  }
  dirty_ = false;
}

void IntervalIndexMatcher::verify_and_emit(std::uint32_t slot, std::size_t reg,
                                           const Publication& pub,
                                           MatchOutcome& out) const {
  const std::size_t d = pub.attributes.size();
  if (dims_[slot] != d) return;
  for (std::size_t a = 0; a < d; ++a) {
    if (a == reg) continue;  // covering: the stab already certified it
    const double v = pub.attributes[a];
    if (lows_[a][slot] > v || v > highs_[a][slot]) return;
  }
  out.subscribers.push_back(subscribers_[slot]);
}

MatchOutcome IntervalIndexMatcher::match_prepared(
    const Publication& plain) const {
  MatchOutcome out;
  std::uint64_t nodes_visited = 0;
  std::uint64_t examined = 0;
  const std::size_t d = plain.attributes.size();
  if (d == 0) {
    for (const std::uint32_t slot : zero_dim_slots_) {
      ++examined;
      out.subscribers.push_back(subscribers_[slot]);
    }
  }
  const std::size_t arity = std::min(d, trees_.size());
  for (std::size_t a = 0; a < arity; ++a) {
    const AttrTree& tree = trees_[a];
    if (tree.nodes.empty()) continue;
    const double v = plain.attributes[a];
    std::int32_t node = 0;
    while (node >= 0) {
      ++nodes_visited;
      const TreeNode& nd = tree.nodes[static_cast<std::size_t>(node)];
      if (v < nd.center) {
        // Everything in the cross list has high >= center > v; the
        // stabbing subset is exactly the ascending-low prefix with
        // low <= v.
        const TreeEntry* e = tree.asc.data() + nd.cross_begin;
        for (std::uint32_t i = 0; i < nd.cross_count && e[i].low <= v; ++i) {
          ++examined;
          verify_and_emit(e[i].slot, a, plain, out);
        }
        node = nd.left;
      } else if (v > nd.center) {
        // Symmetric: low <= center < v, stabbing subset is the
        // descending-high prefix with high >= v.
        const TreeEntry* e = tree.desc.data() + nd.cross_begin;
        for (std::uint32_t i = 0; i < nd.cross_count && e[i].high >= v; ++i) {
          ++examined;
          verify_and_emit(e[i].slot, a, plain, out);
        }
        node = nd.right;
      } else {
        // v == center: every cross entry stabs; subtrees cannot.
        const TreeEntry* e = tree.asc.data() + nd.cross_begin;
        for (std::uint32_t i = 0; i < nd.cross_count; ++i) {
          ++examined;
          verify_and_emit(e[i].slot, a, plain, out);
        }
        node = -1;
      }
    }
  }
  // Exact integer counts: batching-invariant, thread-count invariant, and
  // identical for any slot layout of the same live set.
  out.work_units =
      cost_.index_node_units * static_cast<double>(nodes_visited) +
      cost_.index_candidate_units * static_cast<double>(examined);
  return out;
}

MatchOutcome IntervalIndexMatcher::match(const AnyPublication& pub) {
  const auto& plain = std::get<Publication>(pub);
  rebuild_if_dirty();
  return match_prepared(plain);
}

std::vector<MatchOutcome> IntervalIndexMatcher::match_batch(
    std::span<const AnyPublication> pubs) {
  std::vector<const Publication*> plains;
  plains.reserve(pubs.size());
  for (const AnyPublication& pub : pubs) {
    plains.push_back(&std::get<Publication>(pub));
  }
  // One tree rebuild serves the whole batch.
  rebuild_if_dirty();
  std::vector<MatchOutcome> out(pubs.size());
  if (pool_ != nullptr && pool_->worker_count() > 1 && pubs.size() > 1) {
    // Parallel backend: publications fan out across the pool against the
    // immutable trees. match_prepared is const with no scratch, so each
    // outcome is computed exactly as the scalar path computes it, into its
    // own slot of `out` -- bit-identical at any thread count.
    pool_->parallel_for(plains.size(), [&](std::size_t p, std::size_t) {
      out[p] = match_prepared(*plains[p]);
    });
  } else {
    for (std::size_t p = 0; p < plains.size(); ++p) {
      out[p] = match_prepared(*plains[p]);
    }
  }
  return out;
}

double IntervalIndexMatcher::estimate_match_units() const {
  // Up-front scheduler estimate (the exact cost is only known after the
  // stab): one descent of ~2 log2(n) nodes per attribute plus candidate
  // verification for an assumed ~5% stab selectivity -- the selective
  // workloads this backend targets.
  const double n = static_cast<double>(live_count_);
  const double depth = 2.0 * std::log2(std::max(2.0, n));
  const double arity =
      static_cast<double>(std::max<std::size_t>(max_dims_, 1));
  return cost_.index_node_units * arity * depth +
         cost_.index_candidate_units * 0.05 * n;
}

std::size_t IntervalIndexMatcher::subscription_count() const {
  return live_count_;
}

std::size_t IntervalIndexMatcher::state_bytes() const {
  return 24 * live_count_ + predicate_count_ * 2 * sizeof(double);
}

void IntervalIndexMatcher::write_slot(BinaryWriter& w,
                                      std::uint32_t slot) const {
  // Same wire format as serialize(w, Subscription) per stored entry.
  w.write_id(ids_[slot]);
  w.write_id(subscribers_[slot]);
  w.write_u64(dims_[slot]);
  for (std::uint32_t a = 0; a < dims_[slot]; ++a) {
    w.write_f64(lows_[a][slot]);
    w.write_f64(highs_[a][slot]);
  }
}

void IntervalIndexMatcher::serialize_state(BinaryWriter& w) const {
  // Canonical wire order: ascending subscription id, independent of slot
  // churn, so any split/merge history serializes identically to a
  // never-split store holding the same live set.
  const std::vector<std::uint32_t> live = live_slots_by_id();
  w.write_u64(live.size());
  for (const std::uint32_t slot : live) write_slot(w, slot);
}

void IntervalIndexMatcher::restore_state(BinaryReader& r) {
  ids_.clear();
  subscribers_.clear();
  dims_.clear();
  reg_attr_.clear();
  lows_.clear();
  highs_.clear();
  free_slots_.clear();
  slot_of_.clear();
  trees_.clear();
  zero_dim_slots_.clear();
  live_count_ = 0;
  predicate_count_ = 0;
  max_dims_ = 0;
  dirty_ = true;
  const auto n = r.read_u64();
  ids_.reserve(n);
  subscribers_.reserve(n);
  dims_.reserve(n);
  reg_attr_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    add(AnySubscription{deserialize_subscription(r)});
  }
}

std::size_t IntervalIndexMatcher::split_state(const KeyCoverage& cov,
                                              BinaryWriter& w) {
  std::vector<std::uint32_t> moved;
  for (std::uint32_t slot = 0; slot < ids_.size(); ++slot) {
    if (ids_[slot].valid() && cov.covers(ids_[slot].value())) {
      moved.push_back(slot);
    }
  }
  // Same canonical ascending-id wire order as serialize_state.
  std::sort(moved.begin(), moved.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return ids_[a].value() < ids_[b].value();
            });
  w.write_u64(moved.size());
  for (const std::uint32_t slot : moved) write_slot(w, slot);
  const std::size_t serialized = moved.size();
  if (testing_keep_one_on_split && !moved.empty()) moved.pop_back();
  // Punch holes highest-slot-first so slot reuse refills ascending.
  std::sort(moved.begin(), moved.end(), std::greater<>{});
  for (const std::uint32_t slot : moved) {
    slot_of_.erase(ids_[slot]);
    punch_hole(slot);
  }
  return serialized;
}

void IntervalIndexMatcher::absorb_state(BinaryReader& r) {
  // Plain re-insertion suffices: every observable -- serialization order,
  // candidate traversal, work units, state accounting -- is id-canonical
  // and slot-layout independent, so merged halves reconstruct the
  // never-split store's behavior byte-for-byte regardless of which slots
  // the incoming entries land in.
  const auto n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    add(AnySubscription{deserialize_subscription(r)});
  }
}

std::unique_ptr<Matcher> IntervalIndexMatcher::clone_empty() const {
  auto clone = std::make_unique<IntervalIndexMatcher>(cost_);
  clone->set_thread_pool(pool_);
  return clone;
}

}  // namespace esh::filter
