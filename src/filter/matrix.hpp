// Small dense matrix algebra for the ASPE scheme: random invertible key
// generation, inversion, transpose, and matrix-vector products. Dimensions
// are tiny (d + 3 for d-attribute schemas), so simple O(n^3) routines with
// partial pivoting are exact enough and fast.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace esh::filter {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] static Matrix identity(std::size_t n);

  // Random matrix with entries uniform in [-1, 1], regenerated until the
  // condition heuristic accepts it; always invertible on return.
  [[nodiscard]] static Matrix random_invertible(std::size_t n, Rng& rng);

  [[nodiscard]] Matrix transposed() const;

  // Inverse via Gauss-Jordan elimination with partial pivoting.
  // Throws std::domain_error if singular (within tolerance).
  [[nodiscard]] Matrix inverted() const;

  [[nodiscard]] std::vector<double> multiply(
      const std::vector<double>& v) const;

  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] double dot(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace esh::filter
