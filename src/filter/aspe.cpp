#include "filter/aspe.hpp"

#include <stdexcept>

namespace esh::filter {

AspeKey AspeKey::generate(std::size_t dimensions, Rng& rng) {
  if (dimensions == 0) {
    throw std::invalid_argument{"AspeKey: dimensions must be > 0"};
  }
  AspeKey key;
  key.dimensions_ = dimensions;
  const std::size_t m = key.lifted_size();
  const Matrix m1 = Matrix::random_invertible(m, rng);
  const Matrix m2 = Matrix::random_invertible(m, rng);
  key.m1_t_ = m1.transposed();
  key.m2_t_ = m2.transposed();
  key.m1_inv_ = m1.inverted();
  key.m2_inv_ = m2.inverted();
  key.split_.resize(m);
  for (std::size_t i = 0; i < m; ++i) key.split_[i] = rng.next_bool();
  return key;
}

std::size_t EncryptedSubscription::bytes() const {
  // Matches the wire/serialized representation exactly: two ids, the
  // comparison count, and two length-prefixed share vectors per comparison.
  std::size_t total = 24;
  for (const auto& cmp : comparisons) {
    total += 16 + (cmp.share_a.size() + cmp.share_b.size()) * sizeof(double);
  }
  return total;
}

AspeEncryptor::AspeEncryptor(const AspeKey& key, Rng rng)
    : key_(key), rng_(rng) {}

EncryptedPublication AspeEncryptor::encrypt(const Publication& pub) {
  if (pub.attributes.size() != key_.dimensions()) {
    throw std::invalid_argument{"AspeEncryptor: attribute count mismatch"};
  }
  const std::size_t d = key_.dimensions();
  const std::size_t m = key_.lifted_size();

  // Lift: (x, 1, 0, s_p). Dimension d+1 pairs with the predicate's bound,
  // d+2 with query noise (zero here), d+3 carries publication noise.
  std::vector<double> lifted(m, 0.0);
  for (std::size_t i = 0; i < d; ++i) lifted[i] = pub.attributes[i];
  lifted[d] = 1.0;
  lifted[d + 1] = 0.0;
  lifted[d + 2] = rng_.uniform(-1.0, 1.0);

  // Split by the secret bit vector: s_j = 1 dimensions split randomly.
  std::vector<double> pa(m), pb(m);
  for (std::size_t j = 0; j < m; ++j) {
    if (key_.split()[j]) {
      const double share = rng_.uniform(-1.0, 1.0);
      pa[j] = share;
      pb[j] = lifted[j] - share;
    } else {
      pa[j] = lifted[j];
      pb[j] = lifted[j];
    }
  }

  EncryptedPublication out;
  out.id = pub.id;
  out.share_a = key_.m1_t().multiply(pa);
  out.share_b = key_.m2_t().multiply(pb);
  return out;
}

EncryptedComparison AspeEncryptor::encrypt_comparison(std::size_t attribute,
                                                      double bound,
                                                      bool lower) {
  const std::size_t d = key_.dimensions();
  const std::size_t m = key_.lifted_size();

  // Query vector for x_i >= c: r (e_i, -c, s_q, 0); for x_i <= c the signs
  // of the attribute and bound flip. r > 0 preserves the sign.
  const double r = rng_.uniform(0.5, 2.0);
  std::vector<double> q(m, 0.0);
  q[attribute] = lower ? r : -r;
  q[d] = lower ? -r * bound : r * bound;
  q[d + 1] = rng_.uniform(-1.0, 1.0);
  q[d + 2] = 0.0;

  // Split: s_j = 0 dimensions split randomly (converse of publications).
  std::vector<double> qa(m), qb(m);
  for (std::size_t j = 0; j < m; ++j) {
    if (!key_.split()[j]) {
      const double share = rng_.uniform(-1.0, 1.0);
      qa[j] = share;
      qb[j] = q[j] - share;
    } else {
      qa[j] = q[j];
      qb[j] = q[j];
    }
  }

  EncryptedComparison out;
  out.share_a = key_.m1_inv().multiply(qa);
  out.share_b = key_.m2_inv().multiply(qb);
  return out;
}

EncryptedSubscription AspeEncryptor::encrypt(const Subscription& sub) {
  if (sub.predicates.size() != key_.dimensions()) {
    throw std::invalid_argument{"AspeEncryptor: predicate count mismatch"};
  }
  EncryptedSubscription out;
  out.id = sub.id;
  out.subscriber = sub.subscriber;
  out.comparisons.reserve(2 * sub.predicates.size());
  for (std::size_t i = 0; i < sub.predicates.size(); ++i) {
    out.comparisons.push_back(
        encrypt_comparison(i, sub.predicates[i].low, /*lower=*/true));
    out.comparisons.push_back(
        encrypt_comparison(i, sub.predicates[i].high, /*lower=*/false));
  }
  return out;
}

double evaluate_comparison(const EncryptedComparison& cmp,
                           const EncryptedPublication& pub) {
  // The correctness identity: qa.pa + qb.pb = q~ . p~ (see header).
  return dot(cmp.share_a, pub.share_a) + dot(cmp.share_b, pub.share_b);
}

bool encrypted_match(const EncryptedSubscription& sub,
                     const EncryptedPublication& pub) {
  for (const auto& cmp : sub.comparisons) {
    if (evaluate_comparison(cmp, pub) < 0.0) return false;
  }
  return true;
}

void serialize(BinaryWriter& w, const EncryptedSubscription& s) {
  w.write_id(s.id);
  w.write_id(s.subscriber);
  w.write_u64(s.comparisons.size());
  for (const auto& cmp : s.comparisons) {
    w.write_f64_span(cmp.share_a);
    w.write_f64_span(cmp.share_b);
  }
}

EncryptedSubscription deserialize_encrypted_subscription(BinaryReader& r) {
  EncryptedSubscription s;
  s.id = r.read_id<SubscriptionTag>();
  s.subscriber = r.read_id<SubscriberTag>();
  const auto n = r.read_u64();
  s.comparisons.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EncryptedComparison cmp;
    cmp.share_a = r.read_f64_vector();
    cmp.share_b = r.read_f64_vector();
    s.comparisons.push_back(std::move(cmp));
  }
  return s;
}

void serialize(BinaryWriter& w, const EncryptedPublication& p) {
  w.write_id(p.id);
  w.write_f64_span(p.share_a);
  w.write_f64_span(p.share_b);
}

EncryptedPublication deserialize_encrypted_publication(BinaryReader& r) {
  EncryptedPublication p;
  p.id = r.read_id<PublicationTag>();
  p.share_a = r.read_f64_vector();
  p.share_b = r.read_f64_vector();
  return p;
}

}  // namespace esh::filter
