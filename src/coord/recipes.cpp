#include "coord/recipes.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace esh::coord {

namespace {

std::string leaf_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

}  // namespace

// ---- LeaderElection ----------------------------------------------------------

LeaderElection::LeaderElection(CoordClient& client, std::string root,
                               std::function<void(bool)> on_change)
    : client_(client), root_(std::move(root)), on_change_(std::move(on_change)) {}

void LeaderElection::enter() {
  if (entered_) return;
  entered_ = true;
  const std::uint64_t epoch = ++epoch_;
  client_.ensure_path(root_, "", [this, epoch](Status) {
    if (epoch != epoch_ || !entered_) return;
    client_.create(root_ + "/candidate-", "",
                   CreateMode::kEphemeralSequential,
                   [this, epoch](Status st, const std::string& created) {
                     if (epoch != epoch_ || !entered_) return;
                     if (st != Status::kOk) {
                       entered_ = false;
                       return;
                     }
                     node_ = created;
                     node_name_ = leaf_of(created);
                     check_standing();
                   });
  });
}

void LeaderElection::resign() {
  if (!entered_) return;
  entered_ = false;
  ++epoch_;  // invalidate in-flight callbacks and watches
  if (!node_.empty()) {
    client_.remove(node_, -1, [](Status) {});
    node_.clear();
    node_name_.clear();
  }
  if (leader_) {
    leader_ = false;
    if (on_change_) on_change_(false);
  }
}

void LeaderElection::check_standing() {
  const std::uint64_t epoch = epoch_;
  client_.get_children(
      root_,
      [this, epoch](Status st, const std::vector<std::string>& children) {
        if (epoch != epoch_ || !entered_ || st != Status::kOk) return;
        // Children arrive sorted; sequential suffixes order candidates.
        std::string predecessor;
        for (const std::string& child : children) {
          if (child < node_name_ &&
              (predecessor.empty() || child > predecessor)) {
            predecessor = child;
          }
        }
        if (predecessor.empty()) {
          if (!leader_) {
            leader_ = true;
            if (on_change_) on_change_(true);
          }
          return;
        }
        // Watch only the immediate predecessor (no herd effect).
        client_.get(
            root_ + "/" + predecessor,
            [this, epoch](Status get_st, const std::string&, Stat) {
              // Predecessor vanished between listing and get: re-check.
              if (epoch == epoch_ && entered_ && get_st == Status::kNoNode) {
                check_standing();
              }
            },
            [this, epoch](const WatchEvent& ev) {
              if (epoch != epoch_ || !entered_) return;
              if (ev.type == WatchEventType::kDeleted) check_standing();
            });
      });
}

// ---- DistributedLock -----------------------------------------------------------

DistributedLock::DistributedLock(CoordClient& client, std::string root)
    : client_(client), root_(std::move(root)) {}

void DistributedLock::acquire(std::function<void()> granted) {
  if (pending_ || held_) {
    throw std::logic_error{"DistributedLock: already acquiring or held"};
  }
  pending_ = true;
  granted_ = std::move(granted);
  const std::uint64_t epoch = ++epoch_;
  client_.ensure_path(root_, "", [this, epoch](Status) {
    if (epoch != epoch_ || !pending_) return;
    client_.create(root_ + "/lock-", "", CreateMode::kEphemeralSequential,
                   [this, epoch](Status st, const std::string& created) {
                     if (epoch != epoch_ || !pending_) return;
                     if (st != Status::kOk) {
                       pending_ = false;
                       return;
                     }
                     node_ = created;
                     node_name_ = leaf_of(created);
                     check_front();
                   });
  });
}

void DistributedLock::release() {
  if (!pending_ && !held_) return;
  pending_ = false;
  held_ = false;
  ++epoch_;
  if (!node_.empty()) {
    client_.remove(node_, -1, [](Status) {});
    node_.clear();
    node_name_.clear();
  }
}

void DistributedLock::check_front() {
  const std::uint64_t epoch = epoch_;
  client_.get_children(
      root_,
      [this, epoch](Status st, const std::vector<std::string>& children) {
        if (epoch != epoch_ || !pending_ || st != Status::kOk) return;
        std::string predecessor;
        for (const std::string& child : children) {
          if (child < node_name_ &&
              (predecessor.empty() || child > predecessor)) {
            predecessor = child;
          }
        }
        if (predecessor.empty()) {
          // Ownership epoch: the lock may only be granted to an acquisition
          // attempt that is still pending in the epoch that created the lock
          // node — a stale watch firing after release() bumped the epoch
          // must never re-grant.
          ESH_INVARIANT("coord", "lock-grant-epoch",
                        pending_ && !held_ && epoch == epoch_,
                        ::esh::contracts::Detail{}
                            .expected(epoch)
                            .actual(epoch_)
                            .note(node_ + (held_ ? " already held" : "")));
          pending_ = false;
          held_ = true;
          if (granted_) granted_();
          return;
        }
        client_.get(
            root_ + "/" + predecessor,
            [this, epoch](Status get_st, const std::string&, Stat) {
              if (epoch == epoch_ && pending_ && get_st == Status::kNoNode) {
                check_front();
              }
            },
            [this, epoch](const WatchEvent& ev) {
              if (epoch != epoch_ || !pending_) return;
              if (ev.type == WatchEventType::kDeleted) check_front();
            });
      });
}

}  // namespace esh::coord
