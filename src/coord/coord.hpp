// Minimal ZooKeeper-like coordination kernel ("minizk").
//
// E-STREAMHUB stores its shared configuration and the whole manager state
// in a coordination service so that the manager can be restarted after a
// failure (paper §IV-B). This module reproduces the abstraction surface the
// system needs: a filesystem-like hierarchy of versioned znodes with
// compare-and-set writes, ephemeral and sequential nodes, one-shot watches,
// and sessions with timeouts.
//
// Writes are committed through a simulated quorum (atomic broadcast over a
// support ensemble): every mutation carries a commit latency and is
// assigned a monotonically increasing zxid. Reads are served from the
// leader's in-memory tree with a smaller latency. A leader failover can be
// injected: mutations submitted during the failover window stall until a
// new leader is elected, preserving order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace esh::coord {

enum class Status {
  kOk,
  kNoNode,
  kNodeExists,
  kBadVersion,
  kNotEmpty,
  kNoParent,
  kSessionExpired,
  kBadArguments,
};

const char* to_string(Status s);

enum class CreateMode {
  kPersistent,
  kEphemeral,
  kPersistentSequential,
  kEphemeralSequential,
};

enum class WatchEventType { kDataChanged, kCreated, kDeleted, kChildren };

struct WatchEvent {
  WatchEventType type;
  std::string path;
};

using WatchCallback = std::function<void(const WatchEvent&)>;

struct Stat {
  std::int64_t version = 0;
  std::int64_t czxid = 0;  // zxid of the create
  std::int64_t mzxid = 0;  // zxid of the last modification
  bool ephemeral = false;
  std::size_t num_children = 0;
};

struct CoordConfig {
  // Round trip to the leader for reads.
  SimDuration read_latency = micros(500);
  // Quorum commit for mutations (leader proposal + majority ack).
  SimDuration write_latency = millis(3);
  SimDuration session_timeout = seconds(10);
  // Duration of a leader election when a failover is injected.
  SimDuration failover_duration = seconds(1);
};

class CoordService {
 public:
  CoordService(sim::Simulator& simulator, CoordConfig config = {});
  CoordService(const CoordService&) = delete;
  CoordService& operator=(const CoordService&) = delete;

  // ---- sessions -----------------------------------------------------------

  SessionId create_session();
  // Keeps the session alive; sessions expire session_timeout after the last
  // ping (or creation) and their ephemeral nodes are deleted.
  void ping(SessionId session);
  void close_session(SessionId session);
  [[nodiscard]] bool session_alive(SessionId session) const;

  // ---- asynchronous API (latencies apply) ---------------------------------

  using CreateCallback = std::function<void(Status, const std::string& path)>;
  using GetCallback =
      std::function<void(Status, const std::string& data, Stat stat)>;
  using SetCallback = std::function<void(Status, Stat stat)>;
  using VoidCallback = std::function<void(Status)>;
  using ChildrenCallback =
      std::function<void(Status, const std::vector<std::string>& names)>;
  using ExistsCallback = std::function<void(Status, std::optional<Stat>)>;

  void create(SessionId session, const std::string& path,
              const std::string& data, CreateMode mode, CreateCallback cb);
  void get(SessionId session, const std::string& path, GetCallback cb,
           WatchCallback watch = nullptr);
  // expected_version == -1 matches any version.
  void set(SessionId session, const std::string& path, const std::string& data,
           std::int64_t expected_version, SetCallback cb);
  void remove(SessionId session, const std::string& path,
              std::int64_t expected_version, VoidCallback cb);
  void exists(SessionId session, const std::string& path, ExistsCallback cb,
              WatchCallback watch = nullptr);
  void get_children(SessionId session, const std::string& path,
                    ChildrenCallback cb, WatchCallback watch = nullptr);

  // ---- synchronous inspection (no latency; for tests and local reads) -----

  [[nodiscard]] bool node_exists(const std::string& path) const;
  [[nodiscard]] std::optional<std::string> read(const std::string& path) const;
  [[nodiscard]] std::vector<std::string> children(
      const std::string& path) const;

  // ---- failure injection ---------------------------------------------------

  // Simulates a leader crash: mutations stall for failover_duration.
  void inject_leader_failover();

  [[nodiscard]] std::int64_t last_zxid() const { return zxid_; }
  [[nodiscard]] std::uint64_t committed_ops() const { return committed_ops_; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] const CoordConfig& config() const { return config_; }

 private:
  struct Node {
    std::string data;
    Stat stat;
    std::map<std::string, std::unique_ptr<Node>> children;
    SessionId owner;  // valid only for ephemerals
    std::uint64_t sequence_counter = 0;
    std::vector<WatchCallback> data_watches;
    std::vector<WatchCallback> child_watches;
    // Watches set through exists() on a path that does not exist yet live
    // on the parent, keyed by child name.
    std::map<std::string, std::vector<WatchCallback>> pending_create_watches;
  };

  struct Session {
    SimTime last_ping{};
    bool alive = true;
    std::vector<std::string> ephemerals;
  };

  Node* find(const std::string& path);
  const Node* find(const std::string& path) const;
  Node* find_parent(const std::string& path, std::string* leaf_name);
  static bool valid_path(const std::string& path);

  // Applies a committed mutation; returns status and fires watches.
  Status apply_create(SessionId session, const std::string& path,
                      const std::string& data, CreateMode mode,
                      std::string* created_path);
  Status apply_set(const std::string& path, const std::string& data,
                   std::int64_t expected_version, Stat* out);
  Status apply_remove(const std::string& path, std::int64_t expected_version);

  void fire_data_watches(Node& node, WatchEventType type,
                         const std::string& path);
  void fire_child_watches(Node& parent, const std::string& parent_path);
  void fire_create_watches(Node& parent, const std::string& name,
                           const std::string& full_path);

  // Schedules `fn` after the mutation commit latency, honoring failover.
  void submit_mutation(std::function<void()> fn);
  void schedule_read(std::function<void()> fn);

  void expire_session(SessionId session);
  void check_session_expiry();

  sim::Simulator& simulator_;
  CoordConfig config_;
  Node root_;
  std::int64_t zxid_ = 0;
  std::uint64_t committed_ops_ = 0;
  std::uint64_t next_session_ = 1;
  std::map<SessionId, Session> sessions_;
  SimTime mutation_available_at_{0};  // serialized quorum pipeline
  std::unique_ptr<sim::PeriodicTimer> expiry_timer_;
};

// Convenience client: owns a session and keeps it alive automatically.
class CoordClient {
 public:
  explicit CoordClient(CoordService& service);
  ~CoordClient();
  CoordClient(const CoordClient&) = delete;
  CoordClient& operator=(const CoordClient&) = delete;

  [[nodiscard]] SessionId session() const { return session_; }
  [[nodiscard]] CoordService& service() { return service_; }

  // Stops the keep-alive pings while the client object stays alive,
  // letting the session expire as if the process stalled or was
  // partitioned away (fault-injection seam; there is no way back).
  void stop_pinging() { ping_timer_.reset(); }

  void create(const std::string& path, const std::string& data,
              CreateMode mode, CoordService::CreateCallback cb);
  void get(const std::string& path, CoordService::GetCallback cb,
           WatchCallback watch = nullptr);
  void set(const std::string& path, const std::string& data,
           std::int64_t expected_version, CoordService::SetCallback cb);
  void remove(const std::string& path, std::int64_t expected_version,
              CoordService::VoidCallback cb);
  void get_children(const std::string& path, CoordService::ChildrenCallback cb,
                    WatchCallback watch = nullptr);

  // Creates every missing ancestor of `path` plus the node itself
  // (persistent), then calls cb. Data is written to the leaf only.
  void ensure_path(const std::string& path, const std::string& data,
                   CoordService::VoidCallback cb);

 private:
  CoordService& service_;
  SessionId session_;
  std::unique_ptr<sim::PeriodicTimer> ping_timer_;
};

}  // namespace esh::coord
