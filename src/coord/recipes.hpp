// Standard ZooKeeper recipes on top of the minizk kernel: leader election
// and distributed locks via ephemeral-sequential nodes with
// watch-the-predecessor (no herd effect). e-STREAMHUB uses the election to
// keep a single manager active; a restarted manager joins the election and
// recovers state once it wins (paper §IV-B).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "coord/coord.hpp"

namespace esh::coord {

// Joins an election under `root`. The contender holding the lowest
// ephemeral-sequential node leads; the others watch their immediate
// predecessor and take over in creation order as nodes vanish (session
// expiry or resign).
class LeaderElection {
 public:
  // `on_change` fires with true when this contender becomes leader, and
  // with false if leadership is lost (own node gone, e.g. after resign).
  LeaderElection(CoordClient& client, std::string root,
                 std::function<void(bool leader)> on_change);

  // Enters the election (idempotent once entered).
  void enter();

  // Leaves the election, releasing leadership if held.
  void resign();

  [[nodiscard]] bool is_leader() const { return leader_; }
  [[nodiscard]] bool entered() const { return entered_; }
  [[nodiscard]] const std::string& node() const { return node_; }

 private:
  void check_standing();

  CoordClient& client_;
  std::string root_;
  std::function<void(bool)> on_change_;
  std::string node_;       // full path of our candidate node
  std::string node_name_;  // leaf name
  bool entered_ = false;
  bool leader_ = false;
  std::uint64_t epoch_ = 0;  // invalidates stale watch callbacks
};

// Distributed mutex: acquire() queues an ephemeral-sequential node under
// the lock root and fires `granted` once it is the lowest. release()
// deletes the node (also releasing on session loss, as ephemerals vanish).
class DistributedLock {
 public:
  DistributedLock(CoordClient& client, std::string root);

  void acquire(std::function<void()> granted);
  void release();
  [[nodiscard]] bool held() const { return held_; }

 private:
  void check_front();

  CoordClient& client_;
  std::string root_;
  std::function<void()> granted_;
  std::string node_;
  std::string node_name_;
  bool pending_ = false;
  bool held_ = false;
  std::uint64_t epoch_ = 0;
};

}  // namespace esh::coord
