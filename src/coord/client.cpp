#include "coord/coord.hpp"

#include <memory>

namespace esh::coord {

CoordClient::CoordClient(CoordService& service)
    : service_(service), session_(service.create_session()) {
  ping_timer_ = std::make_unique<sim::PeriodicTimer>(
      service_.simulator(), service_.config().session_timeout / 3,
      [this] { service_.ping(session_); });
}

CoordClient::~CoordClient() {
  ping_timer_.reset();
  service_.close_session(session_);
}

void CoordClient::create(const std::string& path, const std::string& data,
                         CreateMode mode, CoordService::CreateCallback cb) {
  service_.create(session_, path, data, mode, std::move(cb));
}

void CoordClient::get(const std::string& path, CoordService::GetCallback cb,
                      WatchCallback watch) {
  service_.get(session_, path, std::move(cb), std::move(watch));
}

void CoordClient::set(const std::string& path, const std::string& data,
                      std::int64_t expected_version,
                      CoordService::SetCallback cb) {
  service_.set(session_, path, data, expected_version, std::move(cb));
}

void CoordClient::remove(const std::string& path,
                         std::int64_t expected_version,
                         CoordService::VoidCallback cb) {
  service_.remove(session_, path, expected_version, std::move(cb));
}

void CoordClient::get_children(const std::string& path,
                               CoordService::ChildrenCallback cb,
                               WatchCallback watch) {
  service_.get_children(session_, path, std::move(cb), std::move(watch));
}

void CoordClient::ensure_path(const std::string& path, const std::string& data,
                              CoordService::VoidCallback cb) {
  // Create ancestors left to right; kNodeExists along the way is fine.
  auto state = std::make_shared<std::size_t>(1);  // position after leading '/'
  auto step = std::make_shared<std::function<void()>>();
  // The continuation holds itself alive through the in-flight create
  // callback; its own closure must only capture a weak self-reference or
  // the cycle would never free.
  *step = [this, path, data, cb = std::move(cb), state,
           weak = std::weak_ptr<std::function<void()>>(step)] {
    const std::size_t next = path.find('/', *state);
    const bool leaf = next == std::string::npos;
    const std::string prefix = leaf ? path : path.substr(0, next);
    *state = leaf ? path.size() : next + 1;
    create(prefix, leaf ? data : std::string{},
           CreateMode::kPersistent,
           [cb, leaf, step = weak.lock()](Status st, const std::string&) {
             if (st != Status::kOk && st != Status::kNodeExists) {
               cb(st);
               return;
             }
             if (leaf) {
               cb(st == Status::kNodeExists ? Status::kNodeExists : Status::kOk);
               return;
             }
             (*step)();
           });
  };
  (*step)();
}

}  // namespace esh::coord
