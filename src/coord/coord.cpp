#include "coord/coord.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/contracts.hpp"

namespace esh::coord {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "OK";
    case Status::kNoNode:
      return "NO_NODE";
    case Status::kNodeExists:
      return "NODE_EXISTS";
    case Status::kBadVersion:
      return "BAD_VERSION";
    case Status::kNotEmpty:
      return "NOT_EMPTY";
    case Status::kNoParent:
      return "NO_PARENT";
    case Status::kSessionExpired:
      return "SESSION_EXPIRED";
    case Status::kBadArguments:
      return "BAD_ARGUMENTS";
  }
  return "?";
}

namespace {

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t pos = 1;  // skip leading '/'
  while (pos <= path.size()) {
    const std::size_t next = path.find('/', pos);
    if (next == std::string::npos) {
      if (pos < path.size()) parts.push_back(path.substr(pos));
      break;
    }
    parts.push_back(path.substr(pos, next - pos));
    pos = next + 1;
  }
  return parts;
}

}  // namespace

CoordService::CoordService(sim::Simulator& simulator, CoordConfig config)
    : simulator_(simulator), config_(config) {
  expiry_timer_ = std::make_unique<sim::PeriodicTimer>(
      simulator_, config_.session_timeout / 2, [this] { check_session_expiry(); });
}

bool CoordService::valid_path(const std::string& path) {
  if (path.empty() || path.front() != '/') return false;
  if (path.size() > 1 && path.back() == '/') return false;
  if (path.find("//") != std::string::npos) return false;
  return true;
}

CoordService::Node* CoordService::find(const std::string& path) {
  return const_cast<Node*>(std::as_const(*this).find(path));
}

const CoordService::Node* CoordService::find(const std::string& path) const {
  if (!valid_path(path)) return nullptr;
  const Node* node = &root_;
  for (const auto& part : split_path(path)) {
    auto it = node->children.find(part);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

CoordService::Node* CoordService::find_parent(const std::string& path,
                                              std::string* leaf_name) {
  if (!valid_path(path) || path == "/") return nullptr;
  const auto parts = split_path(path);
  Node* node = &root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    auto it = node->children.find(parts[i]);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  *leaf_name = parts.back();
  return node;
}

// ---- sessions --------------------------------------------------------------

SessionId CoordService::create_session() {
  const SessionId id{next_session_++};
  sessions_[id] = Session{simulator_.now(), true, {}};
  return id;
}

void CoordService::ping(SessionId session) {
  auto it = sessions_.find(session);
  if (it != sessions_.end() && it->second.alive) {
    it->second.last_ping = simulator_.now();
  }
}

void CoordService::close_session(SessionId session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.alive) return;
  expire_session(session);
}

bool CoordService::session_alive(SessionId session) const {
  auto it = sessions_.find(session);
  return it != sessions_.end() && it->second.alive;
}

void CoordService::expire_session(SessionId session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.alive) return;
  it->second.alive = false;
  // Ephemerals are removed through the mutation pipeline, preserving the
  // commit order relative to in-flight operations.
  auto ephemerals = it->second.ephemerals;
  for (const auto& path : ephemerals) {
    submit_mutation([this, path] { apply_remove(path, -1); });
  }
  it->second.ephemerals.clear();
}

void CoordService::check_session_expiry() {
  const SimTime now = simulator_.now();
  for (auto& [id, session] : sessions_) {
    if (session.alive && now - session.last_ping > config_.session_timeout) {
      expire_session(id);
    }
  }
}

// ---- scheduling ------------------------------------------------------------

void CoordService::submit_mutation(std::function<void()> fn) {
  // Mutations are serialized through the quorum pipeline: each commit takes
  // write_latency and they complete in submission order. Failover pushes
  // the pipeline availability forward.
  const SimTime start = std::max(simulator_.now(), mutation_available_at_);
  const SimTime commit = start + config_.write_latency;
  mutation_available_at_ = commit;
  simulator_.schedule_at(commit, [this, fn = std::move(fn)] {
    ++committed_ops_;
    fn();
  });
}

void CoordService::schedule_read(std::function<void()> fn) {
  simulator_.schedule(config_.read_latency, std::move(fn));
}

void CoordService::inject_leader_failover() {
  mutation_available_at_ = std::max(mutation_available_at_, simulator_.now()) +
                           config_.failover_duration;
}

// ---- watches ---------------------------------------------------------------

void CoordService::fire_data_watches(Node& node, WatchEventType type,
                                     const std::string& path) {
  auto watches = std::move(node.data_watches);
  node.data_watches.clear();
  for (auto& w : watches) {
    simulator_.schedule(config_.read_latency,
                        [w = std::move(w), type, path] {
                          w(WatchEvent{type, path});
                        });
  }
}

void CoordService::fire_child_watches(Node& parent,
                                      const std::string& parent_path) {
  auto watches = std::move(parent.child_watches);
  parent.child_watches.clear();
  for (auto& w : watches) {
    simulator_.schedule(config_.read_latency,
                        [w = std::move(w), parent_path] {
                          w(WatchEvent{WatchEventType::kChildren, parent_path});
                        });
  }
}

void CoordService::fire_create_watches(Node& parent, const std::string& name,
                                       const std::string& full_path) {
  auto it = parent.pending_create_watches.find(name);
  if (it == parent.pending_create_watches.end()) return;
  auto watches = std::move(it->second);
  parent.pending_create_watches.erase(it);
  for (auto& w : watches) {
    simulator_.schedule(config_.read_latency,
                        [w = std::move(w), full_path] {
                          w(WatchEvent{WatchEventType::kCreated, full_path});
                        });
  }
}

// ---- mutations (applied at commit time) ------------------------------------

Status CoordService::apply_create(SessionId session, const std::string& path,
                                  const std::string& data, CreateMode mode,
                                  std::string* created_path) {
  std::string name;
  Node* parent = find_parent(path, &name);
  if (parent == nullptr) return Status::kNoParent;

  std::string final_name = name;
  if (mode == CreateMode::kPersistentSequential ||
      mode == CreateMode::kEphemeralSequential) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%010llu",
                  static_cast<unsigned long long>(parent->sequence_counter++));
    final_name = name + buf;
  }
  if (parent->children.contains(final_name)) return Status::kNodeExists;

  const bool ephemeral = mode == CreateMode::kEphemeral ||
                         mode == CreateMode::kEphemeralSequential;
  auto node = std::make_unique<Node>();
  node->data = data;
  node->stat.version = 0;
  node->stat.czxid = ++zxid_;
  node->stat.mzxid = node->stat.czxid;
  node->stat.ephemeral = ephemeral;
  if (ephemeral) node->owner = session;

  const std::string parent_path =
      path.substr(0, path.size() - name.size() - 1);
  const std::string full_path =
      (parent_path.empty() ? "" : parent_path) + "/" + final_name;

  Node* inserted = node.get();
  parent->children.emplace(final_name, std::move(node));
  if (ephemeral) {
    auto it = sessions_.find(session);
    if (it != sessions_.end()) it->second.ephemerals.push_back(full_path);
  }
  if (created_path != nullptr) *created_path = full_path;

  fire_create_watches(*parent, final_name, full_path);
  fire_data_watches(*inserted, WatchEventType::kCreated, full_path);
  fire_child_watches(*parent, parent_path.empty() ? "/" : parent_path);
  return Status::kOk;
}

Status CoordService::apply_set(const std::string& path,
                               const std::string& data,
                               std::int64_t expected_version, Stat* out) {
  Node* node = find(path);
  if (node == nullptr) return Status::kNoNode;
  if (expected_version >= 0 && node->stat.version != expected_version) {
    return Status::kBadVersion;
  }
  node->data = data;
  ++node->stat.version;
  const std::int64_t prev_mzxid = node->stat.mzxid;
  node->stat.mzxid = ++zxid_;
  // Zxid ordering (ZooKeeper semantics the recipes rely on): every
  // modification gets a fresh, strictly larger zxid, never below the
  // node's creation zxid.
  ESH_INVARIANT("coord", "zxid-monotonic",
                node->stat.mzxid > prev_mzxid &&
                    node->stat.mzxid >= node->stat.czxid,
                ::esh::contracts::Detail{}
                    .expected(prev_mzxid)
                    .actual(node->stat.mzxid)
                    .note(path));
  if (out != nullptr) {
    *out = node->stat;
    out->num_children = node->children.size();
  }
  fire_data_watches(*node, WatchEventType::kDataChanged, path);
  return Status::kOk;
}

Status CoordService::apply_remove(const std::string& path,
                                  std::int64_t expected_version) {
  std::string name;
  Node* parent = find_parent(path, &name);
  if (parent == nullptr) return Status::kNoNode;
  auto it = parent->children.find(name);
  if (it == parent->children.end()) return Status::kNoNode;
  Node& node = *it->second;
  if (expected_version >= 0 && node.stat.version != expected_version) {
    return Status::kBadVersion;
  }
  if (!node.children.empty()) return Status::kNotEmpty;
  ++zxid_;
  fire_data_watches(node, WatchEventType::kDeleted, path);
  if (node.stat.ephemeral) {
    auto sess = sessions_.find(node.owner);
    if (sess != sessions_.end()) {
      auto& eph = sess->second.ephemerals;
      eph.erase(std::remove(eph.begin(), eph.end(), path), eph.end());
    }
  }
  parent->children.erase(it);
  const std::string parent_path = path.substr(0, path.size() - name.size() - 1);
  fire_child_watches(*parent, parent_path.empty() ? "/" : parent_path);
  return Status::kOk;
}

// ---- public async API ------------------------------------------------------

void CoordService::create(SessionId session, const std::string& path,
                          const std::string& data, CreateMode mode,
                          CreateCallback cb) {
  if (!valid_path(path) || path == "/") {
    schedule_read([cb = std::move(cb), path] { cb(Status::kBadArguments, path); });
    return;
  }
  if (!session_alive(session)) {
    schedule_read(
        [cb = std::move(cb), path] { cb(Status::kSessionExpired, path); });
    return;
  }
  submit_mutation([this, session, path, data, mode, cb = std::move(cb)] {
    std::string created;
    const Status st = apply_create(session, path, data, mode, &created);
    if (cb) cb(st, st == Status::kOk ? created : path);
  });
}

void CoordService::get(SessionId session, const std::string& path,
                       GetCallback cb, WatchCallback watch) {
  schedule_read([this, session, path, cb = std::move(cb),
                 watch = std::move(watch)]() mutable {
    if (!session_alive(session)) {
      cb(Status::kSessionExpired, "", Stat{});
      return;
    }
    Node* node = find(path);
    if (node == nullptr) {
      cb(Status::kNoNode, "", Stat{});
      return;
    }
    if (watch) node->data_watches.push_back(std::move(watch));
    Stat stat = node->stat;
    stat.num_children = node->children.size();
    cb(Status::kOk, node->data, stat);
  });
}

void CoordService::set(SessionId session, const std::string& path,
                       const std::string& data, std::int64_t expected_version,
                       SetCallback cb) {
  if (!session_alive(session)) {
    schedule_read([cb = std::move(cb)] { cb(Status::kSessionExpired, Stat{}); });
    return;
  }
  submit_mutation([this, path, data, expected_version, cb = std::move(cb)] {
    Stat stat;
    const Status st = apply_set(path, data, expected_version, &stat);
    if (cb) cb(st, stat);
  });
}

void CoordService::remove(SessionId session, const std::string& path,
                          std::int64_t expected_version, VoidCallback cb) {
  if (!session_alive(session)) {
    schedule_read([cb = std::move(cb)] { cb(Status::kSessionExpired); });
    return;
  }
  submit_mutation([this, path, expected_version, cb = std::move(cb)] {
    const Status st = apply_remove(path, expected_version);
    if (cb) cb(st);
  });
}

void CoordService::exists(SessionId session, const std::string& path,
                          ExistsCallback cb, WatchCallback watch) {
  schedule_read([this, session, path, cb = std::move(cb),
                 watch = std::move(watch)]() mutable {
    if (!session_alive(session)) {
      cb(Status::kSessionExpired, std::nullopt);
      return;
    }
    Node* node = find(path);
    if (node != nullptr) {
      if (watch) node->data_watches.push_back(std::move(watch));
      Stat stat = node->stat;
      stat.num_children = node->children.size();
      cb(Status::kOk, stat);
      return;
    }
    if (watch) {
      std::string name;
      Node* parent = find_parent(path, &name);
      if (parent != nullptr) {
        parent->pending_create_watches[name].push_back(std::move(watch));
      }
    }
    cb(Status::kNoNode, std::nullopt);
  });
}

void CoordService::get_children(SessionId session, const std::string& path,
                                ChildrenCallback cb, WatchCallback watch) {
  schedule_read([this, session, path, cb = std::move(cb),
                 watch = std::move(watch)]() mutable {
    if (!session_alive(session)) {
      cb(Status::kSessionExpired, {});
      return;
    }
    Node* node = path == "/" ? &root_ : find(path);
    if (node == nullptr) {
      cb(Status::kNoNode, {});
      return;
    }
    if (watch) node->child_watches.push_back(std::move(watch));
    std::vector<std::string> names;
    names.reserve(node->children.size());
    for (const auto& [name, child] : node->children) names.push_back(name);
    cb(Status::kOk, names);
  });
}

// ---- synchronous inspection --------------------------------------------------

bool CoordService::node_exists(const std::string& path) const {
  return path == "/" || find(path) != nullptr;
}

std::optional<std::string> CoordService::read(const std::string& path) const {
  const Node* node = find(path);
  if (node == nullptr) return std::nullopt;
  return node->data;
}

std::vector<std::string> CoordService::children(const std::string& path) const {
  const Node* node = path == "/" ? &root_ : find(path);
  std::vector<std::string> names;
  if (node == nullptr) return names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) names.push_back(name);
  return names;
}

}  // namespace esh::coord
