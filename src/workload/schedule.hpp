// Publication-rate schedules driving the experiments: constant rate
// (baseline and migration experiments), trapezoid ramp (Figure 8's
// synthetic load evolution), and a synthetic Frankfurt Stock Exchange tick
// curve reproducing the shape of the paper's Figure 1 (trading opens at
// 9:00 with a surge, fluctuating day with an afternoon spike, decline after
// the 17:30 close). The real 2011-11-18 tick trace is proprietary; the
// synthetic curve preserves the features the elasticity policy reacts to.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace esh::workload {

class RateSchedule {
 public:
  virtual ~RateSchedule() = default;
  // Publications per second at simulated time t.
  [[nodiscard]] virtual double rate(SimTime t) const = 0;
  // Total length of the schedule.
  [[nodiscard]] virtual SimDuration duration() const = 0;
  // Upper bound on rate() over the whole schedule (thinning envelope).
  [[nodiscard]] virtual double peak_rate() const = 0;
};

class ConstantRate final : public RateSchedule {
 public:
  ConstantRate(double rate_per_sec, SimDuration duration);
  [[nodiscard]] double rate(SimTime) const override { return rate_; }
  [[nodiscard]] SimDuration duration() const override { return duration_; }
  [[nodiscard]] double peak_rate() const override { return rate_; }

 private:
  double rate_;
  SimDuration duration_;
};

// Ramp up to `peak`, hold, ramp back down to zero (Figure 8).
class TrapezoidRate final : public RateSchedule {
 public:
  TrapezoidRate(double peak, SimDuration ramp_up, SimDuration plateau,
                SimDuration ramp_down);
  [[nodiscard]] double rate(SimTime t) const override;
  [[nodiscard]] SimDuration duration() const override;
  [[nodiscard]] double peak_rate() const override { return peak_; }

 private:
  double peak_;
  SimDuration ramp_up_;
  SimDuration plateau_;
  SimDuration ramp_down_;
};

// Synthetic Frankfurt tick curve. The base curve maps an hour of day to a
// tick rate (peak ~1200/s as in Figure 1); the schedule replays the window
// [start_hour, end_hour] compressed by `speedup` and rescaled so the peak
// equals `peak_rate` (the paper: 10x compression, peak scaled from 1200 to
// 190 publications/s for the smaller cluster).
class FrankfurtTrace final : public RateSchedule {
 public:
  struct Config {
    double start_hour = 7.0;
    double end_hour = 20.5;
    double speedup = 20.0;
    double peak_rate = 190.0;
    // Multiplicative noise amplitude on the base curve (0 disables).
    double noise = 0.15;
    std::uint64_t seed = 7;
  };

  explicit FrankfurtTrace(Config config);

  [[nodiscard]] double rate(SimTime t) const override;
  [[nodiscard]] SimDuration duration() const override;
  [[nodiscard]] double peak_rate() const override;

  // Raw base curve in ticks/s at `hour` of day (Figure 1's shape).
  [[nodiscard]] static double base_curve(double hour);
  [[nodiscard]] static double base_peak();

 private:
  Config config_;
  // Precomputed per-30-seconds-of-trace-time noise factors (deterministic,
  // smooth enough to look like market activity).
  std::vector<double> noise_;
};

}  // namespace esh::workload
