// Synthetic pub/sub workload generation (paper §VI-B): d-attribute
// publications with uniform attribute values and hyper-rectangle
// subscriptions calibrated to a target matching rate, plus the ASPE
// pre-encryption pipeline run by trusted clients before events enter the
// engine.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "filter/aspe.hpp"
#include "filter/attribute.hpp"

namespace esh::workload {

struct WorkloadParams {
  std::size_t dimensions = 4;     // d (paper: ASPE schema with d = 4)
  double matching_rate = 0.01;    // P(publication matches subscription)
  std::uint64_t seed = 42;
};

// Plain-text workload: ground truth for tests and the plain-filtering path.
class PlainWorkload {
 public:
  explicit PlainWorkload(WorkloadParams params);

  // Subscription `index` (deterministic): hyper-rectangle whose expected
  // match probability for uniform publications equals matching_rate.
  [[nodiscard]] filter::Subscription subscription(std::uint64_t index);

  // Fresh publication with uniform attributes; ids increase from 1.
  [[nodiscard]] filter::Publication next_publication();

  [[nodiscard]] const WorkloadParams& params() const { return params_; }

 private:
  WorkloadParams params_;
  Rng sub_rng_;
  Rng pub_rng_;
  std::uint64_t next_pub_ = 1;
};

// Pre-encrypted workload: owns the ASPE key (client side) and encrypts the
// plain workload's events, as the paper's source operator replays
// pre-encrypted events.
class EncryptedWorkload {
 public:
  explicit EncryptedWorkload(WorkloadParams params);

  [[nodiscard]] filter::EncryptedSubscription subscription(
      std::uint64_t index);
  // Returns the encrypted publication and, optionally, its plain original
  // (for ground-truth checks).
  [[nodiscard]] filter::EncryptedPublication next_publication(
      filter::Publication* plain_out = nullptr);

  [[nodiscard]] const filter::AspeKey& key() const { return key_; }
  [[nodiscard]] const WorkloadParams& params() const { return params_; }

 private:
  WorkloadParams params_;
  PlainWorkload plain_;
  Rng key_rng_;
  filter::AspeKey key_;
  filter::AspeEncryptor encryptor_;
};

}  // namespace esh::workload
