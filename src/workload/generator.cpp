#include "workload/generator.hpp"

#include <cmath>
#include <stdexcept>

namespace esh::workload {

PlainWorkload::PlainWorkload(WorkloadParams params)
    : params_(params),
      sub_rng_(params.seed * 0x9e3779b97f4a7c15ULL + 1),
      pub_rng_(params.seed * 0xbf58476d1ce4e5b9ULL + 2) {
  if (params_.dimensions == 0) {
    throw std::invalid_argument{"PlainWorkload: dimensions must be > 0"};
  }
  if (params_.matching_rate <= 0.0 || params_.matching_rate > 1.0) {
    throw std::invalid_argument{"PlainWorkload: matching rate in (0, 1]"};
  }
}

filter::Subscription PlainWorkload::subscription(std::uint64_t index) {
  // Deterministic per index: a dedicated generator seeded from the index.
  Rng rng{params_.seed ^ (index * 0x94d049bb133111ebULL + 7)};

  // Split log(matching_rate) across attributes randomly so widths differ
  // per attribute while the product of widths equals the matching rate
  // exactly (uniform publications in [0,1]^d).
  const std::size_t d = params_.dimensions;
  std::vector<double> exponents(d);
  double sum = 0.0;
  for (double& e : exponents) {
    e = 0.25 + rng.next_double();  // bounded away from 0: no degenerate dims
    sum += e;
  }
  filter::Subscription sub;
  sub.id = SubscriptionId{index + 1};
  sub.subscriber = SubscriberId{index};
  sub.predicates.reserve(d);
  for (std::size_t i = 0; i < d; ++i) {
    const double width = std::pow(params_.matching_rate, exponents[i] / sum);
    const double lo = rng.uniform(0.0, 1.0 - width);
    sub.predicates.push_back(filter::Range{lo, lo + width});
  }
  return sub;
}

filter::Publication PlainWorkload::next_publication() {
  filter::Publication pub;
  pub.id = PublicationId{next_pub_++};
  pub.attributes.reserve(params_.dimensions);
  for (std::size_t i = 0; i < params_.dimensions; ++i) {
    pub.attributes.push_back(pub_rng_.next_double());
  }
  return pub;
}

EncryptedWorkload::EncryptedWorkload(WorkloadParams params)
    : params_(params),
      plain_(params),
      key_rng_(params.seed * 0xd6e8feb86659fd93ULL + 3),
      key_(filter::AspeKey::generate(params.dimensions, key_rng_)),
      encryptor_(key_, Rng{params.seed * 0xa0761d6478bd642fULL + 4}) {}

filter::EncryptedSubscription EncryptedWorkload::subscription(
    std::uint64_t index) {
  return encryptor_.encrypt(plain_.subscription(index));
}

filter::EncryptedPublication EncryptedWorkload::next_publication(
    filter::Publication* plain_out) {
  filter::Publication plain = plain_.next_publication();
  auto encrypted = encryptor_.encrypt(plain);
  if (plain_out != nullptr) *plain_out = std::move(plain);
  return encrypted;
}

}  // namespace esh::workload
