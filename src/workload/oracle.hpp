// Oracle-backed workload for cluster-scale experiments.
//
// Really evaluating encrypted filtering at the paper's scale (up to 42
// million ASPE operations per second, sustained for simulated hours) would
// require the authors' 240-core testbed; a single simulation core cannot
// execute that many real dot products in tolerable wall-clock time. The
// macro experiments therefore substitute a *match oracle*: the generator
// samples each publication's ground-truth match set directly (Binomial
// thinning at the configured matching rate, deterministic per publication
// id), while the M slices charge the full ASPE cost model and carry
// encrypted-sized state. Statistically the engine sees exactly the load the
// paper describes - per-pair O(d^2) CPU cost, 1 % matching rate, encrypted
// payload and state sizes - without executing the arithmetic.
//
// The real ASPE implementation (filter/aspe.*) remains fully functional and
// is exercised by unit tests, the small-scale end-to-end test, and the
// micro benchmarks; DESIGN.md documents this substitution.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cost_model.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "filter/matcher.hpp"

namespace esh::workload {

struct OracleParams {
  std::size_t dimensions = 4;
  std::size_t total_subscriptions = 100'000;
  double matching_rate = 0.01;
  // Number of M slices: must match the StreamHub deployment (the oracle
  // partitions match sets the way AP partitions subscriptions).
  std::size_t m_slices = 16;
  std::uint64_t seed = 42;
  // Key skew: this fraction of the subscriptions gets ids congruent to
  // 0 mod m_slices, so they all land in bucket 0 and that M slice becomes
  // a hotspot no whole-slice migration can dilute. 0 keeps the historical
  // uniform ids (index + 1).
  double hot_fraction = 0.0;
  // Popularity skew (social-feed shape): with exponent s > 0, a
  // publication's ground-truth match set is sampled with P(index i)
  // proportional to 1 / (i + 1)^s instead of uniformly -- low indices are
  // the celebrities that match almost every publication, the long tail
  // almost never does. The match-count distribution (and with it every
  // pinned throughput/notification expectation) is unchanged; only which
  // indices match skews. 0 keeps the historical uniform sampling.
  double zipf_exponent = 0.0;
  // Target steady-state size of the churning fringe driven by ChurnStream,
  // as a fraction of total_subscriptions. The fringe lives at indices >=
  // total_subscriptions (fresh, unique ids; see ChurnStream), so the base
  // population and the oracle's match sampling are unaffected. 0 disables.
  //
  // All call sites use designated initializers (the old positional-
  // initializer trap on hot_fraction is retired), so appending knobs here
  // is safe.
  double churn_fraction = 0.0;
};

// Deterministic ground-truth sampler shared by every OracleMatcher.
class MatchOracle {
 public:
  explicit MatchOracle(OracleParams params);

  // Id scheme: uniform ids are index+1; under hot_fraction the first
  // hot_count indices get multiples of m_slices (bucket 0) and the rest
  // walk the non-multiples in order. Both ranges are injective and
  // disjoint, so ids stay unique and AP's modulo routing sees the skew.
  [[nodiscard]] SubscriptionId sub_id(std::uint64_t index) const {
    const std::uint64_t hot = hot_count();
    if (hot == 0) return SubscriptionId{index + 1};
    const auto m = static_cast<std::uint64_t>(params_.m_slices);
    if (index < hot) return SubscriptionId{(index + 1) * m};
    const std::uint64_t j = index - hot;  // j-th id not divisible by m
    return SubscriptionId{(j / (m - 1)) * m + (j % (m - 1)) + 1};
  }
  [[nodiscard]] std::uint64_t hot_count() const {
    if (params_.hot_fraction <= 0.0 || params_.m_slices < 2) return 0;
    return static_cast<std::uint64_t>(
        params_.hot_fraction *
        static_cast<double>(params_.total_subscriptions));
  }
  [[nodiscard]] SubscriberId subscriber_of(std::uint64_t index) const {
    return SubscriberId{index};
  }
  // M slice that stores subscription `index` (AP's modulo-hash rule).
  [[nodiscard]] std::size_t slice_of(std::uint64_t index) const {
    return sub_id(index).value() % params_.m_slices;
  }

  // Match set of one publication, partitioned by M slice; memoized so the
  // m_slices queries for the same publication sample only once.
  using Partition = std::vector<std::vector<std::uint64_t>>;
  [[nodiscard]] std::shared_ptr<const Partition> partitioned_matches(
      PublicationId pub) const;

  // Flat ground-truth match set (sampled subscription indices).
  [[nodiscard]] std::vector<std::uint64_t> matches(PublicationId pub) const;

  [[nodiscard]] const OracleParams& params() const { return params_; }

 private:
  OracleParams params_;
  // Cumulative Zipf weights over [0, total_subscriptions); empty when
  // zipf_exponent == 0 (uniform sampling, the historical path).
  std::vector<double> zipf_cum_;
  // FIFO memoization (single-threaded simulation).
  mutable std::unordered_map<PublicationId, std::shared_ptr<const Partition>>
      cache_;
  mutable std::deque<PublicationId> cache_order_;
};

// Deterministic subscribe/unsubscribe stream over the churning fringe
// (social-feed shape: the stable base population keeps matching, while a
// fringe of size ~ churn_fraction * total_subscriptions subscribes and
// unsubscribes throughout the run). Fringe subscriptions live at indices >=
// total_subscriptions: sub_id() is injective over ALL indices (hot and
// uniform ranges alike), so every churned-in subscription carries a fresh,
// never-reused id and AP's modulo routing spreads the fringe like any
// other traffic. The oracle's match sampling draws from the base
// population only, so the fringe is cold -- it consumes subscribe/
// unsubscribe bandwidth and M-slice state without inflating notifications.
class ChurnStream {
 public:
  struct Event {
    bool subscribe;       // false = unsubscribe
    std::uint64_t index;  // workload subscription index (>= base population)
  };

  ChurnStream(std::shared_ptr<const MatchOracle> oracle, std::uint64_t seed);

  // Next deterministic churn event. Below the target fringe size the
  // stream is subscribe-biased (the fringe fills), at or above it the bias
  // flips (steady state); unsubscribes always target a currently live
  // fringe index, chosen uniformly.
  [[nodiscard]] Event next();

  [[nodiscard]] std::size_t live_fringe() const { return live_.size(); }
  [[nodiscard]] std::uint64_t spawned() const { return next_fresh_; }
  [[nodiscard]] std::uint64_t target_fringe() const;

 private:
  std::shared_ptr<const MatchOracle> oracle_;
  Rng rng_;
  std::vector<std::uint64_t> live_;  // churned-in fringe, insertion order
  std::uint64_t next_fresh_ = 0;
};

// Matcher backed by the oracle: stores (id -> subscriber) of its partition,
// reports encrypted-equivalent state size and ASPE-model match cost, and
// returns the oracle's ground truth restricted to the stored entries.
// Key-level split aware: a deploy-time slice (index < m_slices) only ever
// stores subscriptions of its own oracle bucket, while a split child
// (index >= m_slices) inherits its bucket from the parent lineage and
// scans every bucket to stay truthful.
class OracleMatcher final : public filter::Matcher {
 public:
  OracleMatcher(std::shared_ptr<const MatchOracle> oracle,
                cluster::CostModel cost, std::size_t slice_index);

  void add(const filter::AnySubscription& sub) override;
  bool remove(SubscriptionId id) override;
  [[nodiscard]] filter::MatchOutcome match(
      const filter::AnyPublication& pub) override;
  [[nodiscard]] double estimate_match_units() const override;
  [[nodiscard]] std::size_t subscription_count() const override;
  [[nodiscard]] std::size_t state_bytes() const override;
  void serialize_state(BinaryWriter& w) const override;
  void restore_state(BinaryReader& r) override;
  std::size_t split_state(const KeyCoverage& cov, BinaryWriter& w) override;
  void absorb_state(BinaryReader& r) override;
  [[nodiscard]] std::unique_ptr<filter::Matcher> clone_empty() const override;
  [[nodiscard]] std::string scheme_name() const override {
    return "aspe-oracle";
  }

 private:
  std::shared_ptr<const MatchOracle> oracle_;
  cluster::CostModel cost_;
  std::size_t slice_index_;
  std::unordered_map<SubscriptionId, SubscriberId> subs_;
};

// Generates mock-encrypted events: payloads have exactly the sizes of real
// ASPE ciphertexts (shares of the right dimensions) with junk contents, so
// network and state accounting match the encrypted deployment.
class OracleWorkload {
 public:
  explicit OracleWorkload(OracleParams params);

  [[nodiscard]] filter::EncryptedSubscription subscription(
      std::uint64_t index) const;
  [[nodiscard]] filter::EncryptedPublication next_publication();

  [[nodiscard]] std::shared_ptr<const MatchOracle> oracle() const {
    return oracle_;
  }
  // Factory for StreamHubParams::matcher_factory.
  [[nodiscard]] std::unique_ptr<filter::Matcher> make_matcher(
      cluster::CostModel cost, std::size_t slice_index) const;

  [[nodiscard]] const OracleParams& params() const { return params_; }
  // Expected notifications per publication.
  [[nodiscard]] double expected_matches() const {
    return static_cast<double>(params_.total_subscriptions) *
           params_.matching_rate;
  }

 private:
  OracleParams params_;
  std::shared_ptr<const MatchOracle> oracle_;
  std::uint64_t next_pub_ = 1;
};

}  // namespace esh::workload
