#include "workload/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/det.hpp"

namespace esh::workload {

namespace {
constexpr std::size_t kOracleCacheCapacity = 2048;
}  // namespace

MatchOracle::MatchOracle(OracleParams params) : params_(params) {
  if (params_.total_subscriptions == 0 || params_.m_slices == 0) {
    throw std::invalid_argument{"MatchOracle: need subscriptions and slices"};
  }
  if (params_.matching_rate < 0.0 || params_.matching_rate > 1.0) {
    throw std::invalid_argument{"MatchOracle: matching rate in [0, 1]"};
  }
  if (params_.hot_fraction < 0.0 || params_.hot_fraction > 1.0) {
    throw std::invalid_argument{"MatchOracle: hot fraction in [0, 1]"};
  }
  if (params_.zipf_exponent < 0.0 || params_.zipf_exponent > 4.0) {
    throw std::invalid_argument{"MatchOracle: zipf exponent in [0, 4]"};
  }
  if (params_.churn_fraction < 0.0 || params_.churn_fraction > 1.0) {
    throw std::invalid_argument{"MatchOracle: churn fraction in [0, 1]"};
  }
  if (params_.zipf_exponent > 0.0) {
    zipf_cum_.reserve(params_.total_subscriptions);
    double cum = 0.0;
    for (std::uint64_t i = 0; i < params_.total_subscriptions; ++i) {
      cum += std::pow(static_cast<double>(i + 1), -params_.zipf_exponent);
      zipf_cum_.push_back(cum);
    }
  }
}

std::vector<std::uint64_t> MatchOracle::matches(PublicationId pub) const {
  Rng rng{params_.seed ^ (pub.value() * 0x9e3779b97f4a7c15ULL + 11)};
  const auto n = params_.total_subscriptions;
  const double expected = static_cast<double>(n) * params_.matching_rate;
  // k ~ Binomial(n, p), approximated by a clamped normal (n*p >> 1 for the
  // workloads of interest).
  const double stddev = std::sqrt(expected * (1.0 - params_.matching_rate));
  double k_real = rng.normal(expected, stddev);
  k_real = std::clamp(k_real, 0.0, static_cast<double>(n));
  const auto k = static_cast<std::size_t>(std::lround(k_real));

  std::vector<std::uint64_t> chosen;
  chosen.reserve(k);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(k * 2);
  while (chosen.size() < k) {
    // Uniform popularity, or Zipf-weighted inversion sampling: the match
    // count stays Binomial(n, p) either way, only which indices carry the
    // matches skews (rejection handles without-replacement duplicates).
    std::uint64_t idx;
    if (zipf_cum_.empty()) {
      idx = rng.next_below(n);
    } else {
      const double r = rng.next_double() * zipf_cum_.back();
      idx = static_cast<std::uint64_t>(std::distance(
          zipf_cum_.begin(),
          std::lower_bound(zipf_cum_.begin(), zipf_cum_.end(), r)));
      if (idx >= n) idx = n - 1;  // floating-point edge of the last bucket
    }
    if (seen.insert(idx).second) chosen.push_back(idx);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

// ---- ChurnStream -------------------------------------------------------------

ChurnStream::ChurnStream(std::shared_ptr<const MatchOracle> oracle,
                         std::uint64_t seed)
    : oracle_(std::move(oracle)),
      rng_(seed * 0xd1342543de82ef95ULL + 19) {
  if (oracle_ == nullptr) {
    throw std::invalid_argument{"ChurnStream: oracle required"};
  }
}

std::uint64_t ChurnStream::target_fringe() const {
  const auto& p = oracle_->params();
  return static_cast<std::uint64_t>(
      p.churn_fraction * static_cast<double>(p.total_subscriptions));
}

ChurnStream::Event ChurnStream::next() {
  // Subscribe-biased while filling toward the target fringe, unsubscribe-
  // biased above it: the fringe size random-walks around the target.
  const bool below = live_.size() < target_fringe();
  const double subscribe_p = below ? 0.7 : 0.3;
  if (live_.empty() || rng_.next_double() < subscribe_p) {
    const std::uint64_t index =
        oracle_->params().total_subscriptions + next_fresh_++;
    live_.push_back(index);
    return Event{true, index};
  }
  const std::size_t pos = rng_.next_below(live_.size());
  const std::uint64_t index = live_[pos];
  live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(pos));
  return Event{false, index};
}

std::shared_ptr<const MatchOracle::Partition> MatchOracle::partitioned_matches(
    PublicationId pub) const {
  if (auto it = cache_.find(pub); it != cache_.end()) return it->second;
  auto partition = std::make_shared<Partition>(params_.m_slices);
  for (std::uint64_t index : matches(pub)) {
    (*partition)[slice_of(index)].push_back(index);
  }
  cache_.emplace(pub, partition);
  cache_order_.push_back(pub);
  while (cache_order_.size() > kOracleCacheCapacity) {
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
  }
  return partition;
}

OracleMatcher::OracleMatcher(std::shared_ptr<const MatchOracle> oracle,
                             cluster::CostModel cost, std::size_t slice_index)
    : oracle_(std::move(oracle)), cost_(cost), slice_index_(slice_index) {
  // Indices >= m_slices are legitimate: key-level splits create child
  // slices beyond the deploy-time count.
}

void OracleMatcher::add(const filter::AnySubscription& sub) {
  const auto& enc = std::get<filter::EncryptedSubscription>(sub);
  subs_[enc.id] = enc.subscriber;
}

bool OracleMatcher::remove(SubscriptionId id) { return subs_.erase(id) > 0; }

filter::MatchOutcome OracleMatcher::match(const filter::AnyPublication& pub) {
  filter::MatchOutcome out;
  const auto pub_id = filter::publication_id(pub);
  const auto partition = oracle_->partitioned_matches(pub_id);
  // Only subscriptions actually stored here may match: under partial
  // storage, mid-migration or mid-split the matcher stays truthful.
  const auto scan = [&](const std::vector<std::uint64_t>& indices) {
    for (std::uint64_t index : indices) {
      auto it = subs_.find(oracle_->sub_id(index));
      if (it != subs_.end()) out.subscribers.push_back(it->second);
    }
  };
  if (slice_index_ < oracle_->params().m_slices) {
    // A deploy-time slice's store never leaves its own bucket: splits and
    // merges only shuffle state within one bucket lineage.
    scan((*partition)[slice_index_]);
  } else {
    // Split child: its bucket comes from the parent lineage, which the
    // matcher does not know. Scan every bucket; subs_ filters the rest.
    for (const auto& indices : *partition) scan(indices);
  }
  out.work_units = estimate_match_units();
  return out;
}

double OracleMatcher::estimate_match_units() const {
  return cost_.aspe_match_units(oracle_->params().dimensions) *
         static_cast<double>(subs_.size());
}

std::size_t OracleMatcher::subscription_count() const { return subs_.size(); }

std::size_t OracleMatcher::state_bytes() const {
  return subs_.size() *
         cost_.subscription_bytes(oracle_->params().dimensions);
}

void OracleMatcher::serialize_state(BinaryWriter& w) const {
  // The blob must have the encrypted state's size: migrations transfer the
  // real ciphertexts in the paper's system. Pad each record accordingly.
  const std::size_t record =
      cost_.subscription_bytes(oracle_->params().dimensions);
  const std::size_t payload = 16;  // id + subscriber
  w.write_u64(subs_.size());
  w.write_u64(record);
  const std::string padding(record > payload ? record - payload : 0, '\0');
  // Sorted: checkpoint bytes must not depend on hash-table layout.
  for (const SubscriptionId id : sorted_keys(subs_)) {
    w.write_id(id);
    w.write_id(subs_.at(id));
    w.write_string(padding);
  }
}

std::size_t OracleMatcher::split_state(const KeyCoverage& cov,
                                       BinaryWriter& w) {
  std::vector<SubscriptionId> moving;
  // Sorted: split bytes must not depend on hash-table layout.
  for (const SubscriptionId id : sorted_keys(subs_)) {
    if (cov.covers(id.value())) moving.push_back(id);
  }
  const std::size_t record =
      cost_.subscription_bytes(oracle_->params().dimensions);
  const std::size_t payload = 16;  // id + subscriber
  const std::string padding(record > payload ? record - payload : 0, '\0');
  w.write_u64(moving.size());
  w.write_u64(record);
  for (const SubscriptionId id : moving) {
    w.write_id(id);
    w.write_id(subs_.at(id));
    w.write_string(padding);
  }
  const std::size_t serialized = moving.size();
  if (testing_keep_one_on_split && !moving.empty()) moving.pop_back();
  for (const SubscriptionId id : moving) subs_.erase(id);
  return serialized;
}

void OracleMatcher::absorb_state(BinaryReader& r) {
  const auto n = r.read_u64();
  (void)r.read_u64();  // record size
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto id = r.read_id<SubscriptionTag>();
    const auto subscriber = r.read_id<SubscriberTag>();
    (void)r.read_string();  // padding
    subs_[id] = subscriber;
  }
}

void OracleMatcher::restore_state(BinaryReader& r) {
  subs_.clear();
  const auto n = r.read_u64();
  (void)r.read_u64();  // record size
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto id = r.read_id<SubscriptionTag>();
    const auto subscriber = r.read_id<SubscriberTag>();
    (void)r.read_string();  // padding
    subs_[id] = subscriber;
  }
}

std::unique_ptr<filter::Matcher> OracleMatcher::clone_empty() const {
  auto clone = std::make_unique<OracleMatcher>(oracle_, cost_, slice_index_);
  clone->set_thread_pool(thread_pool());
  return clone;
}

OracleWorkload::OracleWorkload(OracleParams params)
    : params_(params), oracle_(std::make_shared<MatchOracle>(params)) {}

filter::EncryptedSubscription OracleWorkload::subscription(
    std::uint64_t index) const {
  Rng rng{params_.seed ^ (index * 0xbf58476d1ce4e5b9ULL + 13)};
  const std::size_t m = params_.dimensions + 3;
  filter::EncryptedSubscription sub;
  sub.id = oracle_->sub_id(index);
  sub.subscriber = oracle_->subscriber_of(index);
  sub.comparisons.resize(2 * params_.dimensions);
  for (auto& cmp : sub.comparisons) {
    cmp.share_a.resize(m);
    cmp.share_b.resize(m);
    for (double& v : cmp.share_a) v = rng.uniform(-1.0, 1.0);
    for (double& v : cmp.share_b) v = rng.uniform(-1.0, 1.0);
  }
  return sub;
}

filter::EncryptedPublication OracleWorkload::next_publication() {
  Rng rng{params_.seed ^ (next_pub_ * 0x94d049bb133111ebULL + 17)};
  const std::size_t m = params_.dimensions + 3;
  filter::EncryptedPublication pub;
  pub.id = PublicationId{next_pub_++};
  pub.share_a.resize(m);
  pub.share_b.resize(m);
  for (double& v : pub.share_a) v = rng.uniform(-1.0, 1.0);
  for (double& v : pub.share_b) v = rng.uniform(-1.0, 1.0);
  return pub;
}

std::unique_ptr<filter::Matcher> OracleWorkload::make_matcher(
    cluster::CostModel cost, std::size_t slice_index) const {
  return std::make_unique<OracleMatcher>(oracle_, cost, slice_index);
}

}  // namespace esh::workload
