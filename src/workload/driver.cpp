#include "workload/driver.hpp"

#include <algorithm>
#include <stdexcept>

namespace esh::workload {

PublicationDriver::PublicationDriver(
    sim::Simulator& simulator, std::shared_ptr<const RateSchedule> schedule,
    std::function<void()> publish_one, std::uint64_t seed,
    std::function<void()> on_done)
    : simulator_(simulator),
      schedule_(std::move(schedule)),
      publish_one_(std::move(publish_one)),
      on_done_(std::move(on_done)),
      rng_(seed) {
  if (!schedule_ || !publish_one_) {
    throw std::invalid_argument{"PublicationDriver: schedule and callback"};
  }
}

void PublicationDriver::start() {
  if (running_) return;
  running_ = true;
  origin_ = simulator_.now();
  arm_next();
}

void PublicationDriver::stop() {
  running_ = false;
  pending_.cancel();
}

void PublicationDriver::arm_next() {
  if (!running_) return;
  const double envelope = std::max(schedule_->peak_rate(), 1e-9);
  // Thinning: candidate arrivals at the envelope rate, accepted with
  // probability rate(t)/envelope.
  SimTime t = simulator_.now() - origin_;
  for (;;) {
    const double gap = rng_.exponential(envelope);
    t += micros(static_cast<std::int64_t>(gap * 1e6) + 1);
    if (t > schedule_->duration()) {
      running_ = false;
      if (on_done_) {
        pending_ = simulator_.schedule_at(origin_ + schedule_->duration(),
                                          [this] { on_done_(); });
      }
      return;
    }
    if (rng_.next_double() * envelope <= schedule_->rate(t)) break;
  }
  pending_ = simulator_.schedule_at(origin_ + t, [this] {
    ++published_;
    publish_one_();
    arm_next();
  });
}

}  // namespace esh::workload
