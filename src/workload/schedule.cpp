#include "workload/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esh::workload {

ConstantRate::ConstantRate(double rate_per_sec, SimDuration duration)
    : rate_(rate_per_sec), duration_(duration) {
  if (rate_ < 0.0) throw std::invalid_argument{"ConstantRate: negative rate"};
}

TrapezoidRate::TrapezoidRate(double peak, SimDuration ramp_up,
                             SimDuration plateau, SimDuration ramp_down)
    : peak_(peak), ramp_up_(ramp_up), plateau_(plateau), ramp_down_(ramp_down) {
  if (peak <= 0.0) throw std::invalid_argument{"TrapezoidRate: peak <= 0"};
}

double TrapezoidRate::rate(SimTime t) const {
  const double x = to_seconds(t);
  const double up = to_seconds(ramp_up_);
  const double hold = to_seconds(plateau_);
  const double down = to_seconds(ramp_down_);
  if (x < 0.0) return 0.0;
  if (x < up) return peak_ * (x / up);
  if (x < up + hold) return peak_;
  if (x < up + hold + down) return peak_ * (1.0 - (x - up - hold) / down);
  return 0.0;
}

SimDuration TrapezoidRate::duration() const {
  return ramp_up_ + plateau_ + ramp_down_;
}

// Control points (hour of day, ticks/s) tracing Figure 1's features:
// pre-market trickle from 8:00, sharp surge at the 9:00 open, fluctuating
// day, mid-afternoon spike (US markets opening), decline after the 17:30
// close, quiet evening.
namespace {
struct Point {
  double hour;
  double rate;
};
constexpr Point kCurve[] = {
    {0.0, 0.0},    {7.75, 0.0},   {8.0, 90.0},    {8.9, 140.0},
    {9.0, 1150.0}, {9.3, 950.0},  {10.0, 800.0},  {11.0, 680.0},
    {12.0, 560.0}, {13.0, 540.0}, {14.0, 620.0},  {15.3, 700.0},
    {15.5, 1200.0},{15.8, 950.0}, {16.5, 850.0},  {17.4, 820.0},
    {17.5, 420.0}, {18.0, 160.0}, {19.0, 70.0},   {20.0, 15.0},
    {20.5, 0.0},   {24.0, 0.0},
};
}  // namespace

double FrankfurtTrace::base_curve(double hour) {
  hour = std::clamp(hour, 0.0, 24.0);
  const std::size_t n = std::size(kCurve);
  for (std::size_t i = 1; i < n; ++i) {
    if (hour <= kCurve[i].hour) {
      const auto& a = kCurve[i - 1];
      const auto& b = kCurve[i];
      const double f =
          b.hour == a.hour ? 1.0 : (hour - a.hour) / (b.hour - a.hour);
      return a.rate + f * (b.rate - a.rate);
    }
  }
  return 0.0;
}

double FrankfurtTrace::base_peak() { return 1200.0; }

FrankfurtTrace::FrankfurtTrace(Config config) : config_(config) {
  if (config_.end_hour <= config_.start_hour || config_.speedup <= 0.0) {
    throw std::invalid_argument{"FrankfurtTrace: bad window or speedup"};
  }
  // One noise factor per 30 s of (compressed) experiment time, smoothed by
  // averaging adjacent raw draws.
  const double seconds =
      (config_.end_hour - config_.start_hour) * 3600.0 / config_.speedup;
  const auto buckets = static_cast<std::size_t>(seconds / 30.0) + 2;
  Rng rng{config_.seed};
  std::vector<double> raw(buckets);
  for (double& x : raw) x = rng.normal(0.0, config_.noise);
  noise_.resize(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    const double prev = i > 0 ? raw[i - 1] : raw[i];
    const double next = i + 1 < buckets ? raw[i + 1] : raw[i];
    noise_[i] = std::max(0.2, 1.0 + (prev + raw[i] + next) / 3.0);
  }
}

double FrankfurtTrace::rate(SimTime t) const {
  const double sec = to_seconds(t);
  if (sec < 0.0 || t > duration()) return 0.0;
  const double hour = config_.start_hour + sec * config_.speedup / 3600.0;
  const double base = base_curve(hour);
  const auto bucket = static_cast<std::size_t>(sec / 30.0);
  const double noise =
      bucket < noise_.size() ? noise_[bucket] : 1.0;
  return base / base_peak() * config_.peak_rate * noise;
}

SimDuration FrankfurtTrace::duration() const {
  const double seconds =
      (config_.end_hour - config_.start_hour) * 3600.0 / config_.speedup;
  return esh::seconds(static_cast<std::int64_t>(seconds));
}

double FrankfurtTrace::peak_rate() const {
  return config_.peak_rate * (1.0 + 4.0 * config_.noise);
}

}  // namespace esh::workload
