// Non-homogeneous Poisson publication driver: emits publish callbacks
// following a RateSchedule, using the standard thinning method against the
// schedule's peak-rate envelope.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"
#include "workload/schedule.hpp"

namespace esh::workload {

class PublicationDriver {
 public:
  // `publish_one` is invoked once per generated publication; `on_done`
  // (optional) fires when the schedule is exhausted.
  PublicationDriver(sim::Simulator& simulator,
                    std::shared_ptr<const RateSchedule> schedule,
                    std::function<void()> publish_one, std::uint64_t seed,
                    std::function<void()> on_done = nullptr);

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t published() const { return published_; }

 private:
  void arm_next();

  sim::Simulator& simulator_;
  std::shared_ptr<const RateSchedule> schedule_;
  std::function<void()> publish_one_;
  std::function<void()> on_done_;
  Rng rng_;
  SimTime origin_{};
  bool running_ = false;
  std::uint64_t published_ = 0;
  sim::EventHandle pending_;
};

}  // namespace esh::workload
