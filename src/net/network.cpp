#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"

namespace esh::net {

namespace {

void check_probability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument{std::string{what} +
                                ": probability not in [0,1]"};
  }
}

}  // namespace

Network::Network(sim::Simulator& simulator, NetworkConfig config)
    : simulator_(simulator),
      config_(config),
      loss_rng_(config.loss_seed),
      dup_rng_(config.inject_seed ^ 0x6475'706c'6963ULL),
      reorder_rng_(config.inject_seed ^ 0x7265'6f72'6465ULL),
      corrupt_rng_(config.inject_seed ^ 0x636f'7272'7570ULL) {
  if (config_.bytes_per_us <= 0.0) {
    throw std::invalid_argument{"Network: bandwidth must be positive"};
  }
}

Endpoint Network::new_endpoint() { return Endpoint{next_endpoint_++}; }

void Network::bind(Endpoint endpoint, HostId host, DeliveryHandler handler) {
  if (!endpoint.valid() || !host.valid()) {
    throw std::invalid_argument{"Network::bind: invalid endpoint or host"};
  }
  auto [it, inserted] =
      bindings_.try_emplace(endpoint, Binding{host, std::move(handler), 0});
  if (!inserted) {
    throw std::logic_error{"Network::bind: endpoint already bound"};
  }
}

void Network::rebind(Endpoint endpoint, HostId new_host,
                     DeliveryHandler handler) {
  auto it = bindings_.find(endpoint);
  if (it == bindings_.end()) {
    throw std::logic_error{"Network::rebind: endpoint not bound"};
  }
  it->second.host = new_host;
  it->second.handler = std::move(handler);
  ++it->second.generation;
}

void Network::unbind(Endpoint endpoint) {
  if (bindings_.erase(endpoint) == 0) {
    throw std::logic_error{"Network::unbind: endpoint not bound"};
  }
}

bool Network::bound(Endpoint endpoint) const {
  return bindings_.contains(endpoint);
}

HostId Network::host_of(Endpoint endpoint) const {
  auto it = bindings_.find(endpoint);
  if (it == bindings_.end()) {
    throw std::logic_error{"Network::host_of: endpoint not bound"};
  }
  return it->second.host;
}

double Network::loss_for(HostId src, HostId dst) const {
  if (auto it = link_loss_.find({src, dst}); it != link_loss_.end()) {
    return it->second;
  }
  if (auto it = host_loss_.find(dst); it != host_loss_.end()) {
    return it->second;
  }
  return loss_probability_;
}

void Network::send(Endpoint from, Endpoint to, MessagePtr message,
                   std::size_t payload_bytes) {
  ++stats_.messages_sent;
  const std::size_t bytes = payload_bytes + config_.overhead_bytes;
  stats_.bytes_sent += bytes;

  const auto from_it = bindings_.find(from);
  const auto to_it = bindings_.find(to);
  if (from_it == bindings_.end() || to_it == bindings_.end()) {
    ++stats_.messages_dropped;
    return;
  }
  const HostId src_host = from_it->second.host;
  const HostId dst_host = to_it->second.host;
  const std::uint64_t dst_generation = to_it->second.generation;
  if (down_hosts_.contains(src_host) || down_hosts_.contains(dst_host)) {
    ++stats_.messages_dropped;
    return;
  }

  // Named partitions: decided at send time, after routing resolved, like
  // the loss stage below — a partition is loss you can point at.
  if (!partitions_.empty()) {
    for (const auto& [name, part] : partitions_) {
      if (part.separates(src_host, dst_host)) {
        ++stats_.messages_lost;
        ++stats_.messages_partitioned;
        return;
      }
    }
  }

  // Probabilistic loss: decided at send time, after routing resolved, so
  // the counter is disjoint from down-host/unbound drops. Precedence:
  // per-link overrides per-destination-host overrides global.
  if (loss_probability_ > 0.0 || !host_loss_.empty() || !link_loss_.empty()) {
    const double p = loss_for(src_host, dst_host);
    if (p > 0.0 && loss_rng_.next_double() < p) {
      ++stats_.messages_lost;
      return;
    }
  }

  // Duplication: decided once per surviving message; the copy follows the
  // same route with a small seeded extra delay so it arrives strictly
  // after (or reordered against) the original.
  bool duplicate = false;
  SimDuration copy_extra{};
  if (duplication_probability_ > 0.0) {
    duplicate = dup_rng_.next_double() < duplication_probability_;
    if (duplicate) {
      const auto span =
          static_cast<std::uint64_t>(config_.latency.count()) + 1;
      copy_extra = micros(static_cast<std::int64_t>(dup_rng_.next_below(span)));
      ++stats_.messages_duplicated;
    }
  }

  SimTime delivery_time{};
  double degrade = 1.0;
  if (auto it = host_degradation_.find(src_host);
      it != host_degradation_.end()) {
    degrade = std::max(degrade, it->second);
  }
  if (auto it = host_degradation_.find(dst_host);
      it != host_degradation_.end()) {
    degrade = std::max(degrade, it->second);
  }
  if (auto it = link_degradation_.find({src_host, dst_host});
      it != link_degradation_.end()) {
    degrade = std::max(degrade, it->second);
  }
  if (src_host == dst_host) {
    const auto local_us = static_cast<std::int64_t>(
        static_cast<double>(config_.local_latency.count()) * degrade);
    delivery_time = simulator_.now() + micros(local_us);
  } else {
    // NIC egress serialization: messages leave the host one after another.
    // A gray-degraded sender (or receiver) transmits slower by the factor.
    SimTime& busy_until = nic_busy_until_[src_host];
    const SimTime tx_start = std::max(simulator_.now(), busy_until);
    const auto tx_us = static_cast<std::int64_t>(
        static_cast<double>(bytes) / config_.bytes_per_us * degrade);
    // Bandwidth never negative: a negative transmit time would move the
    // NIC's busy horizon backwards and let later sends overtake this one.
    ESH_INVARIANT("net", "nic-transmit-nonnegative", tx_us >= 0,
                  ::esh::contracts::Detail{}
                      .host(src_host)
                      .expected("tx_us >= 0")
                      .actual(tx_us)
                      .note(std::to_string(bytes) + " bytes"));
    const SimTime tx_end = tx_start + micros(tx_us);
    ESH_INVARIANT("net", "nic-egress-serialized", tx_end >= busy_until,
                  ::esh::contracts::Detail{}
                      .host(src_host)
                      .expected(busy_until)
                      .actual(tx_end)
                      .note("egress horizon moved backwards"));
    busy_until = tx_end;
    const auto lat_us = static_cast<std::int64_t>(
        static_cast<double>(config_.latency.count()) * degrade);
    delivery_time = tx_end + micros(lat_us);
  }

  // Corruption and reordering are per transmitted copy: the duplicate
  // rolls its own dice, so an intact original may arrive with a corrupted
  // twin and vice versa. Draw order (original first, then the copy) is
  // fixed so the streams stay deterministic.
  const std::size_t copies = duplicate ? 2 : 1;
  for (std::size_t i = 0; i < copies; ++i) {
    SimTime when = delivery_time + (i == 0 ? SimDuration{} : copy_extra);
    bool corrupted = false;
    if (corruption_probability_ > 0.0 &&
        corrupt_rng_.next_double() < corruption_probability_) {
      corrupted = true;
      ++stats_.messages_corrupted;
    }
    if (reorder_probability_ > 0.0 && reorder_window_ > SimDuration::zero() &&
        reorder_rng_.next_double() < reorder_probability_) {
      const auto span =
          static_cast<std::uint64_t>(reorder_window_.count());
      when = when +
             micros(static_cast<std::int64_t>(reorder_rng_.next_below(span)) +
                    1);
      ++stats_.messages_reordered;
    }
    schedule_delivery(from, to, dst_host, dst_generation, message, bytes,
                      when, corrupted);
  }
}

void Network::schedule_delivery(Endpoint from, Endpoint to, HostId dst_host,
                                std::uint64_t dst_generation,
                                MessagePtr message, std::size_t bytes,
                                SimTime when, bool corrupted) {
  simulator_.schedule_at(
      when, [this, from, to, dst_host, dst_generation,
             message = std::move(message), bytes, corrupted] {
        auto it = bindings_.find(to);
        // Deliver only if the endpoint still lives where the message was
        // routed (generation check catches unbind+rebind races).
        if (it == bindings_.end() || it->second.host != dst_host ||
            it->second.generation != dst_generation ||
            down_hosts_.contains(dst_host)) {
          ++stats_.messages_dropped;
          return;
        }
        ++stats_.messages_delivered;
        // Conservation: every sent message (plus every injected duplicate)
        // is delivered, dropped, or lost exactly once (some are still in
        // flight, hence <=).
        ESH_INVARIANT("net", "message-conservation",
                      stats_.messages_delivered + stats_.messages_dropped +
                              stats_.messages_lost <=
                          stats_.messages_sent + stats_.messages_duplicated,
                      ::esh::contracts::Detail{}
                          .expected(stats_.messages_sent +
                                    stats_.messages_duplicated)
                          .actual(stats_.messages_delivered +
                                  stats_.messages_dropped +
                                  stats_.messages_lost));
        it->second.handler(
            Delivery{from, to, std::move(message), bytes, corrupted});
      });
}

void Network::set_host_down(HostId host, bool down) {
  if (down) {
    down_hosts_.insert(host);
  } else {
    down_hosts_.erase(host);
  }
}

bool Network::host_down(HostId host) const {
  return down_hosts_.contains(host);
}

void Network::set_loss(double probability) {
  check_probability(probability, "Network::set_loss");
  loss_probability_ = probability;
}

void Network::set_host_loss(HostId dst, double probability) {
  check_probability(probability, "Network::set_host_loss");
  host_loss_[dst] = probability;
}

void Network::clear_host_loss(HostId dst) { host_loss_.erase(dst); }

void Network::set_link_loss(HostId src, HostId dst, double probability) {
  check_probability(probability, "Network::set_link_loss");
  link_loss_[{src, dst}] = probability;
}

void Network::clear_link_loss(HostId src, HostId dst) {
  link_loss_.erase({src, dst});
}

void Network::set_duplication(double probability) {
  check_probability(probability, "Network::set_duplication");
  duplication_probability_ = probability;
}

void Network::set_reorder(double probability, SimDuration window) {
  check_probability(probability, "Network::set_reorder");
  if (probability > 0.0 && window <= SimDuration::zero()) {
    throw std::invalid_argument{"Network::set_reorder: window must be > 0"};
  }
  reorder_probability_ = probability;
  reorder_window_ = window;
}

void Network::set_corruption(double probability) {
  check_probability(probability, "Network::set_corruption");
  corruption_probability_ = probability;
}

void Network::set_host_degradation(HostId host, double latency_factor) {
  if (latency_factor < 1.0) {
    throw std::invalid_argument{
        "Network::set_host_degradation: factor must be >= 1"};
  }
  if (latency_factor == 1.0) {
    host_degradation_.erase(host);
  } else {
    host_degradation_[host] = latency_factor;
  }
}

void Network::clear_host_degradation(HostId host) {
  host_degradation_.erase(host);
}

double Network::host_degradation(HostId host) const {
  auto it = host_degradation_.find(host);
  return it == host_degradation_.end() ? 1.0 : it->second;
}

void Network::set_link_degradation(HostId src, HostId dst,
                                   double latency_factor) {
  if (latency_factor < 1.0) {
    throw std::invalid_argument{
        "Network::set_link_degradation: factor must be >= 1"};
  }
  if (latency_factor == 1.0) {
    link_degradation_.erase({src, dst});
  } else {
    link_degradation_[{src, dst}] = latency_factor;
  }
}

void Network::clear_link_degradation(HostId src, HostId dst) {
  link_degradation_.erase({src, dst});
}

void Network::partition(const std::string& name,
                        const std::vector<HostId>& group_a,
                        const std::vector<HostId>& group_b) {
  if (group_a.empty() || group_b.empty()) {
    throw std::invalid_argument{"Network::partition: empty group"};
  }
  Partition part;
  part.group_a.insert(group_a.begin(), group_a.end());
  part.group_b.insert(group_b.begin(), group_b.end());
  for (HostId host : part.group_a) {
    if (part.group_b.contains(host)) {
      throw std::invalid_argument{
          "Network::partition: groups must be disjoint"};
    }
  }
  partitions_[name] = std::move(part);
}

void Network::heal(const std::string& name) {
  if (partitions_.erase(name) == 0) {
    throw std::invalid_argument{"Network::heal: unknown partition"};
  }
}

void Network::heal_all() { partitions_.clear(); }

bool Network::partitioned(HostId a, HostId b) const {
  for (const auto& [name, part] : partitions_) {
    if (part.separates(a, b)) return true;
  }
  return false;
}

}  // namespace esh::net
