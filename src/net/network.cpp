#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"

namespace esh::net {

Network::Network(sim::Simulator& simulator, NetworkConfig config)
    : simulator_(simulator), config_(config), loss_rng_(config.loss_seed) {
  if (config_.bytes_per_us <= 0.0) {
    throw std::invalid_argument{"Network: bandwidth must be positive"};
  }
}

Endpoint Network::new_endpoint() { return Endpoint{next_endpoint_++}; }

void Network::bind(Endpoint endpoint, HostId host, DeliveryHandler handler) {
  if (!endpoint.valid() || !host.valid()) {
    throw std::invalid_argument{"Network::bind: invalid endpoint or host"};
  }
  auto [it, inserted] =
      bindings_.try_emplace(endpoint, Binding{host, std::move(handler), 0});
  if (!inserted) {
    throw std::logic_error{"Network::bind: endpoint already bound"};
  }
}

void Network::rebind(Endpoint endpoint, HostId new_host,
                     DeliveryHandler handler) {
  auto it = bindings_.find(endpoint);
  if (it == bindings_.end()) {
    throw std::logic_error{"Network::rebind: endpoint not bound"};
  }
  it->second.host = new_host;
  it->second.handler = std::move(handler);
  ++it->second.generation;
}

void Network::unbind(Endpoint endpoint) {
  if (bindings_.erase(endpoint) == 0) {
    throw std::logic_error{"Network::unbind: endpoint not bound"};
  }
}

bool Network::bound(Endpoint endpoint) const {
  return bindings_.contains(endpoint);
}

HostId Network::host_of(Endpoint endpoint) const {
  auto it = bindings_.find(endpoint);
  if (it == bindings_.end()) {
    throw std::logic_error{"Network::host_of: endpoint not bound"};
  }
  return it->second.host;
}

void Network::send(Endpoint from, Endpoint to, MessagePtr message,
                   std::size_t payload_bytes) {
  ++stats_.messages_sent;
  const std::size_t bytes = payload_bytes + config_.overhead_bytes;
  stats_.bytes_sent += bytes;

  const auto from_it = bindings_.find(from);
  const auto to_it = bindings_.find(to);
  if (from_it == bindings_.end() || to_it == bindings_.end()) {
    ++stats_.messages_dropped;
    return;
  }
  const HostId src_host = from_it->second.host;
  const HostId dst_host = to_it->second.host;
  const std::uint64_t dst_generation = to_it->second.generation;
  if (down_hosts_.contains(src_host) || down_hosts_.contains(dst_host)) {
    ++stats_.messages_dropped;
    return;
  }

  // Probabilistic loss: decided at send time, after routing resolved, so
  // the counter is disjoint from down-host/unbound drops.
  if (loss_probability_ > 0.0 || !host_loss_.empty()) {
    double p = loss_probability_;
    if (auto it = host_loss_.find(dst_host); it != host_loss_.end()) {
      p = it->second;
    }
    if (p > 0.0 && loss_rng_.next_double() < p) {
      ++stats_.messages_lost;
      return;
    }
  }

  SimTime delivery_time{};
  if (src_host == dst_host) {
    delivery_time = simulator_.now() + config_.local_latency;
  } else {
    // NIC egress serialization: messages leave the host one after another.
    SimTime& busy_until = nic_busy_until_[src_host];
    const SimTime tx_start = std::max(simulator_.now(), busy_until);
    const auto tx_us = static_cast<std::int64_t>(
        static_cast<double>(bytes) / config_.bytes_per_us);
    // Bandwidth never negative: a negative transmit time would move the
    // NIC's busy horizon backwards and let later sends overtake this one.
    ESH_INVARIANT("net", "nic-transmit-nonnegative", tx_us >= 0,
                  ::esh::contracts::Detail{}
                      .host(src_host)
                      .expected("tx_us >= 0")
                      .actual(tx_us)
                      .note(std::to_string(bytes) + " bytes"));
    const SimTime tx_end = tx_start + micros(tx_us);
    ESH_INVARIANT("net", "nic-egress-serialized", tx_end >= busy_until,
                  ::esh::contracts::Detail{}
                      .host(src_host)
                      .expected(busy_until)
                      .actual(tx_end)
                      .note("egress horizon moved backwards"));
    busy_until = tx_end;
    delivery_time = tx_end + config_.latency;
  }

  simulator_.schedule_at(
      delivery_time, [this, from, to, dst_host, dst_generation,
                      message = std::move(message), bytes] {
        auto it = bindings_.find(to);
        // Deliver only if the endpoint still lives where the message was
        // routed (generation check catches unbind+rebind races).
        if (it == bindings_.end() || it->second.host != dst_host ||
            it->second.generation != dst_generation ||
            down_hosts_.contains(dst_host)) {
          ++stats_.messages_dropped;
          return;
        }
        ++stats_.messages_delivered;
        // Conservation: every sent message is delivered, dropped, or lost
        // exactly once (some are still in flight, hence <=).
        ESH_INVARIANT("net", "message-conservation",
                      stats_.messages_delivered + stats_.messages_dropped +
                              stats_.messages_lost <=
                          stats_.messages_sent,
                      ::esh::contracts::Detail{}
                          .expected(stats_.messages_sent)
                          .actual(stats_.messages_delivered +
                                  stats_.messages_dropped +
                                  stats_.messages_lost));
        it->second.handler(Delivery{from, to, std::move(message), bytes});
      });
}

void Network::set_host_down(HostId host, bool down) {
  if (down) {
    down_hosts_.insert(host);
  } else {
    down_hosts_.erase(host);
  }
}

bool Network::host_down(HostId host) const {
  return down_hosts_.contains(host);
}

void Network::set_loss(double probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument{"Network::set_loss: probability not in [0,1]"};
  }
  loss_probability_ = probability;
}

void Network::set_host_loss(HostId dst, double probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument{
        "Network::set_host_loss: probability not in [0,1]"};
  }
  host_loss_[dst] = probability;
}

void Network::clear_host_loss(HostId dst) { host_loss_.erase(dst); }

}  // namespace esh::net
