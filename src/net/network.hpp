// Simulated cluster network. Models per-host NIC egress bandwidth (the
// paper's 1 Gbps switched network), propagation latency, and FIFO delivery
// per (source host, destination endpoint) — the ordering property the
// migration protocol's per-channel sequence numbers rely on.
//
// Endpoints are location-transparent addresses bound to a host; rebinding
// models a component (operator slice) moving to another host. A message
// routes to the binding that was current when it was sent, like an open
// connection: if the endpoint moved or unbound before delivery, the message
// is dropped and counted (the migration protocol tolerates this window by
// duplicating events).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace esh::net {

// Opaque network address.
struct EndpointTag {};
using Endpoint = Id<EndpointTag>;

// Polymorphic message payload. Payloads are immutable and shared: a
// broadcast enqueues one allocation, not N copies.
struct Message {
  virtual ~Message() = default;
};
using MessagePtr = std::shared_ptr<const Message>;

struct Delivery {
  Endpoint from;
  Endpoint to;
  MessagePtr message;
  std::size_t bytes = 0;
};

using DeliveryHandler = std::function<void(const Delivery&)>;

struct NetworkConfig {
  // One-way propagation + switching latency between distinct hosts.
  SimDuration latency = micros(200);
  // Loopback latency for co-located endpoints.
  SimDuration local_latency = micros(5);
  // NIC egress bandwidth per host; 1 Gbps = 125 bytes/us.
  double bytes_per_us = 125.0;
  // Fixed per-message protocol overhead added to the payload size.
  std::size_t overhead_bytes = 64;
  // Seed of the loss-injection RNG (chaos testing; see set_loss).
  std::uint64_t loss_seed = 0x6c6f'7373'5f72'6e67ULL;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  // Messages discarded by probabilistic loss injection; counted separately
  // from the down-host/unbound drops above.
  std::uint64_t messages_lost = 0;
  std::uint64_t bytes_sent = 0;
};

class Network {
 public:
  Network(sim::Simulator& simulator, NetworkConfig config = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Allocates a fresh, unbound endpoint address.
  Endpoint new_endpoint();

  // Binds an endpoint to a host with a delivery handler. An endpoint can be
  // bound to at most one host at a time.
  void bind(Endpoint endpoint, HostId host, DeliveryHandler handler);

  // Atomically moves the endpoint to a new host (new handler included,
  // since the component instance changes).
  void rebind(Endpoint endpoint, HostId new_host, DeliveryHandler handler);

  void unbind(Endpoint endpoint);
  [[nodiscard]] bool bound(Endpoint endpoint) const;
  [[nodiscard]] HostId host_of(Endpoint endpoint) const;

  // Sends `message` from `from` to `to`. `payload_bytes` is the serialized
  // application size; the config's overhead is added on top. Delivery obeys
  // NIC egress serialization on the sender host plus link latency.
  void send(Endpoint from, Endpoint to, MessagePtr message,
            std::size_t payload_bytes);

  // Failure injection: a down host neither sends nor receives; affected
  // messages are dropped.
  void set_host_down(HostId host, bool down);
  [[nodiscard]] bool host_down(HostId host) const;

  // Chaos injection: every message is independently discarded at send time
  // with the given probability (seeded, deterministic). The global knob
  // applies to all traffic; the per-host knob applies to messages whose
  // destination endpoint is bound to `dst` and overrides the global one.
  // Lost messages increment stats().messages_lost, not messages_dropped.
  void set_loss(double probability);
  void set_host_loss(HostId dst, double probability);
  void clear_host_loss(HostId dst);
  [[nodiscard]] double loss() const { return loss_probability_; }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

 private:
  struct Binding {
    HostId host;
    DeliveryHandler handler;
    std::uint64_t generation = 0;
  };

  sim::Simulator& simulator_;
  NetworkConfig config_;
  std::uint64_t next_endpoint_ = 1;
  std::unordered_map<Endpoint, Binding> bindings_;
  std::unordered_map<HostId, SimTime> nic_busy_until_;
  std::unordered_set<HostId> down_hosts_;
  double loss_probability_ = 0.0;
  std::unordered_map<HostId, double> host_loss_;
  Rng loss_rng_;
  NetworkStats stats_;
};

}  // namespace esh::net
