// Simulated cluster network. Models per-host NIC egress bandwidth (the
// paper's 1 Gbps switched network), propagation latency, and FIFO delivery
// per (source host, destination endpoint) — the ordering property the
// migration protocol's per-channel sequence numbers rely on.
//
// Endpoints are location-transparent addresses bound to a host; rebinding
// models a component (operator slice) moving to another host. A message
// routes to the binding that was current when it was sent, like an open
// connection: if the endpoint moved or unbound before delivery, the message
// is dropped and counted (the migration protocol tolerates this window by
// duplicating events).
//
// Adversarial injection (chaos testing): beyond whole-host crashes and
// probabilistic loss, the network can inject duplication, bounded
// reordering, payload corruption flags, asymmetric per-link loss, latency
// degradation (gray failures: slow NICs / slow links) and named
// bidirectional partitions. Every injection is seeded and gated: with all
// knobs at their defaults no injection RNG is ever consulted, so runs are
// byte-identical to a network without the machinery.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace esh::net {

// Opaque network address.
struct EndpointTag {};
using Endpoint = Id<EndpointTag>;

// Polymorphic message payload. Payloads are immutable and shared: a
// broadcast enqueues one allocation, not N copies.
struct Message {
  virtual ~Message() = default;
};
using MessagePtr = std::shared_ptr<const Message>;

struct Delivery {
  Endpoint from;
  Endpoint to;
  MessagePtr message;
  std::size_t bytes = 0;
  // Corruption injection is size-preserving: the payload object is shared
  // and immutable, so damage is modeled as a flag the receiver must honor
  // (a checksum failure; reliable channels treat it as loss).
  bool corrupted = false;
};

using DeliveryHandler = std::function<void(const Delivery&)>;

struct NetworkConfig {
  // One-way propagation + switching latency between distinct hosts.
  SimDuration latency = micros(200);
  // Loopback latency for co-located endpoints.
  SimDuration local_latency = micros(5);
  // NIC egress bandwidth per host; 1 Gbps = 125 bytes/us.
  double bytes_per_us = 125.0;
  // Fixed per-message protocol overhead added to the payload size.
  std::size_t overhead_bytes = 64;
  // Seed of the loss-injection RNG (chaos testing; see set_loss).
  std::uint64_t loss_seed = 0x6c6f'7373'5f72'6e67ULL;
  // Seed of the duplication/reorder/corruption RNG streams; each injection
  // type draws from its own stream so enabling one never perturbs another.
  std::uint64_t inject_seed = 0x696e'6a65'6374'3532ULL;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  // Messages discarded by injection (probabilistic loss, link loss,
  // partitions); counted separately from the down-host/unbound drops above.
  std::uint64_t messages_lost = 0;
  // Extra copies created by duplication injection (each copy also counts
  // toward delivered/dropped when it resolves).
  std::uint64_t messages_duplicated = 0;
  // Deliveries that received reorder jitter (FIFO displaced, bounded by
  // the reorder window).
  std::uint64_t messages_reordered = 0;
  // Deliveries flagged corrupted.
  std::uint64_t messages_corrupted = 0;
  // Retransmissions noted by reliable channels (see ReliableChannel).
  std::uint64_t messages_retransmitted = 0;
  // Sends discarded because source and destination were separated by a
  // named partition (also included in messages_lost).
  std::uint64_t messages_partitioned = 0;
  std::uint64_t bytes_sent = 0;

  // Byte-identity fingerprints fold the whole counter set in.
  bool operator==(const NetworkStats&) const = default;
};

class Network {
 public:
  Network(sim::Simulator& simulator, NetworkConfig config = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Allocates a fresh, unbound endpoint address.
  Endpoint new_endpoint();

  // Binds an endpoint to a host with a delivery handler. An endpoint can be
  // bound to at most one host at a time.
  void bind(Endpoint endpoint, HostId host, DeliveryHandler handler);

  // Atomically moves the endpoint to a new host (new handler included,
  // since the component instance changes).
  void rebind(Endpoint endpoint, HostId new_host, DeliveryHandler handler);

  void unbind(Endpoint endpoint);
  [[nodiscard]] bool bound(Endpoint endpoint) const;
  [[nodiscard]] HostId host_of(Endpoint endpoint) const;

  // Sends `message` from `from` to `to`. `payload_bytes` is the serialized
  // application size; the config's overhead is added on top. Delivery obeys
  // NIC egress serialization on the sender host plus link latency.
  void send(Endpoint from, Endpoint to, MessagePtr message,
            std::size_t payload_bytes);

  // Failure injection: a down host neither sends nor receives; affected
  // messages are dropped.
  void set_host_down(HostId host, bool down);
  [[nodiscard]] bool host_down(HostId host) const;

  // Chaos injection: every message is independently discarded at send time
  // with the given probability (seeded, deterministic). The global knob
  // applies to all traffic; the per-host knob applies to messages whose
  // destination endpoint is bound to `dst` and overrides the global one;
  // the per-link knob applies to messages from `src` to `dst` specifically
  // and overrides both (asymmetric: the reverse direction is unaffected).
  // Lost messages increment stats().messages_lost, not messages_dropped.
  void set_loss(double probability);
  void set_host_loss(HostId dst, double probability);
  void clear_host_loss(HostId dst);
  void set_link_loss(HostId src, HostId dst, double probability);
  void clear_link_loss(HostId src, HostId dst);
  [[nodiscard]] double loss() const { return loss_probability_; }

  // Duplication injection: each message surviving the loss stage is
  // independently delivered twice with probability p. The copy rides the
  // same route with a small seeded extra delay, so receivers see genuine
  // duplicates (same bytes, later arrival).
  void set_duplication(double probability);
  [[nodiscard]] double duplication() const { return duplication_probability_; }

  // Bounded reordering: each delivery independently receives extra seeded
  // jitter uniform in (0, window] with probability p. FIFO breaks, but no
  // message is displaced past the window — receivers with a reorder buffer
  // of `window` depth still see every message.
  void set_reorder(double probability, SimDuration window);
  [[nodiscard]] double reorder() const { return reorder_probability_; }

  // Corruption injection: each delivery is independently flagged corrupted
  // (Delivery::corrupted) with probability p. Size-preserving: timing and
  // byte accounting are unchanged.
  void set_corruption(double probability);
  [[nodiscard]] double corruption() const { return corruption_probability_; }

  // Gray failures: multiplies the host's NIC transmit time and the latency
  // of every link touching it (factor >= 1; 1 clears). A degraded host is
  // slow but alive — nothing is lost, everything is late.
  void set_host_degradation(HostId host, double latency_factor);
  void clear_host_degradation(HostId host);
  [[nodiscard]] double host_degradation(HostId host) const;
  // Slow link: multiplies the latency of the directed link src->dst.
  void set_link_degradation(HostId src, HostId dst, double latency_factor);
  void clear_link_degradation(HostId src, HostId dst);

  // Named bidirectional partition: messages between any host in `group_a`
  // and any host in `group_b` (either direction) are discarded at send time
  // and counted as lost until heal(name) removes the partition. Several
  // partitions may coexist; a message is discarded if any of them separates
  // its endpoints. Re-using a live name replaces that partition.
  void partition(const std::string& name, const std::vector<HostId>& group_a,
                 const std::vector<HostId>& group_b);
  void heal(const std::string& name);
  void heal_all();
  [[nodiscard]] bool partitioned(HostId a, HostId b) const;
  [[nodiscard]] std::size_t active_partitions() const {
    return partitions_.size();
  }

  // Reliable-channel bookkeeping: retransmissions are ordinary sends, so
  // the channel reports them here to keep stats() a full picture of the
  // wire (see NetworkStats::messages_retransmitted).
  void note_retransmit() { ++stats_.messages_retransmitted; }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

 private:
  struct Binding {
    HostId host;
    DeliveryHandler handler;
    std::uint64_t generation = 0;
  };
  struct Partition {
    std::set<HostId> group_a;
    std::set<HostId> group_b;
    [[nodiscard]] bool separates(HostId x, HostId y) const {
      return (group_a.contains(x) && group_b.contains(y)) ||
             (group_a.contains(y) && group_b.contains(x));
    }
  };

  // Resolved loss probability for a (src, dst) pair under the precedence
  // link > host > global.
  [[nodiscard]] double loss_for(HostId src, HostId dst) const;
  void schedule_delivery(Endpoint from, Endpoint to, HostId dst_host,
                         std::uint64_t dst_generation, MessagePtr message,
                         std::size_t bytes, SimTime when, bool corrupted);

  sim::Simulator& simulator_;
  NetworkConfig config_;
  std::uint64_t next_endpoint_ = 1;
  std::unordered_map<Endpoint, Binding> bindings_;
  std::unordered_map<HostId, SimTime> nic_busy_until_;
  std::unordered_set<HostId> down_hosts_;
  double loss_probability_ = 0.0;
  std::unordered_map<HostId, double> host_loss_;
  std::map<std::pair<HostId, HostId>, double> link_loss_;
  double duplication_probability_ = 0.0;
  double reorder_probability_ = 0.0;
  SimDuration reorder_window_{};
  double corruption_probability_ = 0.0;
  std::unordered_map<HostId, double> host_degradation_;
  std::map<std::pair<HostId, HostId>, double> link_degradation_;
  std::map<std::string, Partition> partitions_;
  Rng loss_rng_;
  Rng dup_rng_;
  Rng reorder_rng_;
  Rng corrupt_rng_;
  NetworkStats stats_;
};

}  // namespace esh::net
