// Reliable control channel: ack/retransmit over the simulated network for
// control-plane traffic (migration protocol steps, checkpoint shipping,
// recovery orchestration). The data plane tolerates duplication and
// reordering by construction (per-channel sequence numbers + replica
// buffering) but has no retransmission below the checkpoint/replay layer;
// control messages used to inherit that gap. A ReliableChannel closes it:
//
//   sender                       receiver
//   ReliableData{seq, payload} ->  dedup + in-order buffer
//                              <-  ReliableAck{cumulative}
//   timer: retransmit with exponential backoff + seeded jitter
//
// Per-peer sequence numbers, receiver-side dedup and an out-of-order
// buffer give exactly-once, in-order delivery to the application handler
// per (sender endpoint, receiver endpoint) pair as long as the peer stays
// reachable. A bounded retry budget escalates to the registered give-up
// handler (wired to the failure detector) instead of retrying forever.
//
// Determinism: retransmission timers run on the simulator clock and their
// jitter comes from a seeded RNG stream derived from the local endpoint,
// so runs are pure functions of config + seeds. Messages that are not
// ReliableData/ReliableAck pass through to the application handler
// untouched — data-plane traffic can share the endpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace esh::net {

struct ReliableChannelConfig {
  // First retransmission deadline. Each unacked message also adds twice its
  // own serialization time so large transfers (state checkpoints) are not
  // spuriously retransmitted while still on the NIC.
  SimDuration initial_rto = millis(50);
  // Exponential backoff: rto *= backoff_factor per retry, capped at max_rto.
  double backoff_factor = 2.0;
  SimDuration max_rto = seconds(2);
  // Seeded jitter: each retransmission delay is scaled by a factor drawn
  // uniformly from [1 - jitter, 1 + jitter] (decorrelates retry storms).
  double jitter = 0.1;
  std::uint64_t jitter_seed = 0x7265'7472'795f'6a69ULL;
  // Retransmissions per message before the channel gives up on the peer
  // and escalates (the first transmission is not counted).
  std::size_t max_retries = 8;
};

struct ReliableStats {
  std::uint64_t data_sent = 0;        // first transmissions
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t delivered = 0;        // handed to the application, in order
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t corrupt_dropped = 0;  // treated as loss; retransmit covers
  std::uint64_t give_ups = 0;         // peers abandoned after budget
};

// Wire frame carrying one application message on a reliable channel.
struct ReliableData final : Message {
  std::uint64_t seq = 0;
  MessagePtr payload;
  std::size_t payload_bytes = 0;
};

// Cumulative acknowledgment: every seq <= cumulative arrived.
struct ReliableAck final : Message {
  std::uint64_t cumulative = 0;
};

class ReliableChannel {
 public:
  // Size of the sequence/ack framing added to each payload, and of a
  // standalone ack message, in simulated bytes.
  static constexpr std::size_t kHeaderBytes = 16;

  using GiveUpHandler = std::function<void(Endpoint peer)>;

  // Binds `local` on `host` and dispatches reliable frames; deliveries that
  // are not reliable frames pass through to `app` unchanged. The channel
  // owns the binding (unbinds on destruction).
  ReliableChannel(sim::Simulator& simulator, Network& network, Endpoint local,
                  HostId host, DeliveryHandler app,
                  ReliableChannelConfig config = {});
  ~ReliableChannel();
  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  // Sends `message` to `to` with at-least-once transmission and
  // exactly-once, in-order delivery at a ReliableChannel-owned peer.
  void send(Endpoint to, MessagePtr message, std::size_t payload_bytes);

  // Called when a message to a peer exhausted its retry budget. The peer's
  // entire sender state is dropped (it is presumed failed; the failure
  // detector takes over) — do not reuse the channel toward that peer.
  void on_give_up(GiveUpHandler handler) { give_up_ = std::move(handler); }

  // Silently drops all channel state toward `peer` — pending retransmits
  // are cancelled without the give-up escalation. For callers that already
  // convicted the peer dead (its endpoint never rebinds).
  void forget_peer(Endpoint peer);

  [[nodiscard]] const ReliableStats& stats() const { return stats_; }
  [[nodiscard]] Endpoint endpoint() const { return local_; }
  // Unacked messages currently awaiting (re)transmission across all peers.
  [[nodiscard]] std::size_t in_flight() const;

#if ESH_INVARIANTS_ENABLED
  // Seeded-fault seams for tests/test_contracts.cpp (checked builds only).
  // Warps the admission cursor for `peer` backwards (below what was already
  // delivered) so the peer's next retransmission is re-admitted and
  // re-delivered: trips net/reliable-no-dup-deliver.
  void testing_rewind_rx_cursor(Endpoint peer, std::uint64_t to_seq);
  // Warps the admission cursor forward past undelivered seqs so the next
  // delivery skips them: trips net/reliable-no-gap.
  void testing_skip_rx_cursor(Endpoint peer, std::uint64_t to_seq);
  // Inflates the retry counter of the oldest pending message to `peer`
  // beyond the budget and forces a retransmission attempt: trips
  // net/retry-budget-bounded.
  void testing_force_overbudget_retransmit(Endpoint peer);
#endif

 private:
  struct Pending {
    MessagePtr payload;
    std::size_t payload_bytes = 0;
    std::size_t retries = 0;
    SimDuration rto{};
    sim::EventHandle timer;
  };
  struct SenderState {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Pending> pending;
  };
  struct ReceiverState {
    // Admission guard: next seq to accept into the in-order stream. Kept
    // separate from the delivered audit trail below so the contract layer
    // cross-checks two independently-maintained views (a corrupted cursor
    // is caught instead of silently re-shaping the stream).
    std::uint64_t expected = 1;
    // Audit trail: highest seq actually handed to the application.
    std::uint64_t last_delivered = 0;
    std::map<std::uint64_t, MessagePtr> buffered;
  };

  void on_delivery(const Delivery& d);
  void on_data(const Delivery& d, const ReliableData& data);
  void on_ack(Endpoint peer, const ReliableAck& ack);
  void transmit(Endpoint peer, std::uint64_t seq, bool retransmit);
  void arm_timer(Endpoint peer, std::uint64_t seq);
  void deliver_ready(Endpoint peer, ReceiverState& rx);
  void give_up(Endpoint peer);
  [[nodiscard]] SimDuration base_rto(std::size_t payload_bytes) const;
  [[nodiscard]] SimDuration jittered(SimDuration rto);

  sim::Simulator& simulator_;
  Network& network_;
  Endpoint local_;
  DeliveryHandler app_;
  ReliableChannelConfig config_;
  Rng jitter_rng_;
  GiveUpHandler give_up_;
  std::map<Endpoint, SenderState> senders_;
  std::map<Endpoint, ReceiverState> receivers_;
  ReliableStats stats_;
};

}  // namespace esh::net
