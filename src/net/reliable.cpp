#include "net/reliable.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "analysis/protocol_spec.hpp"
#include "common/log.hpp"

namespace esh::net {

namespace {

// Positions in the seq/ack handshake, asserted against the declarative
// tables in src/analysis/protocol_spec.cpp (reliable-tx / reliable-rx) so
// the channel, the model checker and docs/SPEC_CATALOG.md share one edge
// list. A Pending entry exists exactly while its message is in flight; a
// seq below the receive cursor is delivered.
enum class TxMsg : std::uint8_t {
  kFresh,
  kInFlight,
  kAcked,
  kGivenUp,
  kForgotten,
};
enum class RxSeq : std::uint8_t { kUnseen, kBuffered, kDelivered, kForgotten };

void assert_tx_transition([[maybe_unused]] std::uint64_t seq,
                          [[maybe_unused]] TxMsg from,
                          [[maybe_unused]] TxMsg to) {
  ESH_STATE_MACHINE_ASSERT(
      "net", "reliable-tx-step-legal",
      analysis::reliable_tx_spec().legal(static_cast<std::size_t>(from),
                                         static_cast<std::size_t>(to)),
      ::esh::contracts::Detail{}
          .transition(std::string{analysis::reliable_tx_spec().state_name(
                          static_cast<std::size_t>(from))},
                      std::string{analysis::reliable_tx_spec().state_name(
                          static_cast<std::size_t>(to))})
          .note("seq " + std::to_string(seq)));
}

void assert_rx_transition([[maybe_unused]] std::uint64_t seq,
                          [[maybe_unused]] RxSeq from,
                          [[maybe_unused]] RxSeq to) {
  ESH_STATE_MACHINE_ASSERT(
      "net", "reliable-rx-step-legal",
      analysis::reliable_rx_spec().legal(static_cast<std::size_t>(from),
                                         static_cast<std::size_t>(to)),
      ::esh::contracts::Detail{}
          .transition(std::string{analysis::reliable_rx_spec().state_name(
                          static_cast<std::size_t>(from))},
                      std::string{analysis::reliable_rx_spec().state_name(
                          static_cast<std::size_t>(to))})
          .note("seq " + std::to_string(seq)));
}

}  // namespace

ReliableChannel::ReliableChannel(sim::Simulator& simulator, Network& network,
                                 Endpoint local, HostId host,
                                 DeliveryHandler app,
                                 ReliableChannelConfig config)
    : simulator_(simulator),
      network_(network),
      local_(local),
      app_(std::move(app)),
      config_(config),
      // Per-channel stream: distinct endpoints (allocated deterministically)
      // get decorrelated jitter without sharing draw order.
      jitter_rng_(config.jitter_seed ^
                  (0x9e37'79b9'7f4a'7c15ULL * local.value())) {
  if (config_.backoff_factor < 1.0) {
    throw std::invalid_argument{
        "ReliableChannel: backoff_factor must be >= 1"};
  }
  if (config_.jitter < 0.0 || config_.jitter >= 1.0) {
    throw std::invalid_argument{"ReliableChannel: jitter must be in [0,1)"};
  }
  if (config_.initial_rto <= SimDuration::zero()) {
    throw std::invalid_argument{"ReliableChannel: initial_rto must be > 0"};
  }
  network_.bind(local_, host, [this](const Delivery& d) { on_delivery(d); });
}

ReliableChannel::~ReliableChannel() {
  for (auto& [peer, tx] : senders_) {
    for (auto& [seq, pending] : tx.pending) pending.timer.cancel();
  }
  if (network_.bound(local_)) {
    network_.unbind(local_);
  }
}

std::size_t ReliableChannel::in_flight() const {
  std::size_t n = 0;
  for (const auto& [peer, tx] : senders_) n += tx.pending.size();
  return n;
}

SimDuration ReliableChannel::base_rto(std::size_t payload_bytes) const {
  // Large payloads (state transfers) serialize for a long time on the NIC;
  // budget two traversals so the ack has a chance to return.
  const auto tx_us = static_cast<std::int64_t>(
      2.0 * static_cast<double>(payload_bytes + kHeaderBytes) /
      network_.config().bytes_per_us);
  return config_.initial_rto + micros(tx_us);
}

SimDuration ReliableChannel::jittered(SimDuration rto) {
  if (config_.jitter == 0.0) return rto;
  const double factor =
      jitter_rng_.uniform(1.0 - config_.jitter, 1.0 + config_.jitter);
  return micros(static_cast<std::int64_t>(
      static_cast<double>(rto.count()) * factor));
}

void ReliableChannel::send(Endpoint to, MessagePtr message,
                           std::size_t payload_bytes) {
  SenderState& tx = senders_[to];
  const std::uint64_t seq = tx.next_seq++;
  Pending pending;
  pending.payload = std::move(message);
  pending.payload_bytes = payload_bytes;
  pending.rto = base_rto(payload_bytes);
  assert_tx_transition(seq, TxMsg::kFresh, TxMsg::kInFlight);
  tx.pending.emplace(seq, std::move(pending));
  ++stats_.data_sent;
  transmit(to, seq, /*retransmit=*/false);
}

void ReliableChannel::transmit(Endpoint peer, std::uint64_t seq,
                               bool retransmit) {
  auto tx_it = senders_.find(peer);
  if (tx_it == senders_.end()) return;
  auto it = tx_it->second.pending.find(seq);
  if (it == tx_it->second.pending.end()) return;
  Pending& pending = it->second;
  // The budget bounds retransmissions per message: the give-up path must
  // run before a transmission beyond it is ever attempted.
  ESH_INVARIANT("net", "retry-budget-bounded",
                pending.retries <= config_.max_retries,
                ::esh::contracts::Detail{}
                    .expected(config_.max_retries)
                    .actual(pending.retries)
                    .note("seq " + std::to_string(seq)));
  if (retransmit) {
    ++stats_.retransmits;
    network_.note_retransmit();
  }
  auto frame = std::make_shared<ReliableData>();
  frame->seq = seq;
  frame->payload = pending.payload;
  frame->payload_bytes = pending.payload_bytes;
  network_.send(local_, peer, std::move(frame),
                pending.payload_bytes + kHeaderBytes);
  arm_timer(peer, seq);
}

void ReliableChannel::arm_timer(Endpoint peer, std::uint64_t seq) {
  auto tx_it = senders_.find(peer);
  if (tx_it == senders_.end()) return;
  auto it = tx_it->second.pending.find(seq);
  if (it == tx_it->second.pending.end()) return;
  Pending& pending = it->second;
  pending.timer.cancel();
  pending.timer =
      simulator_.schedule(jittered(pending.rto), [this, peer, seq] {
        auto s_it = senders_.find(peer);
        if (s_it == senders_.end()) return;
        auto p_it = s_it->second.pending.find(seq);
        if (p_it == s_it->second.pending.end()) return;  // acked meanwhile
        Pending& p = p_it->second;
        if (p.retries >= config_.max_retries) {
          give_up(peer);
          return;
        }
        ++p.retries;
        assert_tx_transition(seq, TxMsg::kInFlight, TxMsg::kInFlight);
        p.rto = std::min(
            micros(static_cast<std::int64_t>(
                static_cast<double>(p.rto.count()) * config_.backoff_factor)),
            config_.max_rto);
        transmit(peer, seq, /*retransmit=*/true);
      });
}

void ReliableChannel::forget_peer(Endpoint peer) {
  if (auto it = senders_.find(peer); it != senders_.end()) {
    for (auto& [seq, pending] : it->second.pending) {
      assert_tx_transition(seq, TxMsg::kInFlight, TxMsg::kForgotten);
      pending.timer.cancel();
    }
    senders_.erase(it);
  }
  if (auto it = receivers_.find(peer); it != receivers_.end()) {
    for (const auto& [seq, payload] : it->second.buffered) {
      assert_rx_transition(seq, RxSeq::kBuffered, RxSeq::kForgotten);
    }
    receivers_.erase(it);
  }
}

void ReliableChannel::give_up(Endpoint peer) {
  auto it = senders_.find(peer);
  if (it == senders_.end()) return;
  ESH_WARN << "ReliableChannel: giving up on peer " << peer << " ("
           << it->second.pending.size() << " unacked)";
  for (auto& [seq, pending] : it->second.pending) {
    assert_tx_transition(seq, TxMsg::kInFlight, TxMsg::kGivenUp);
    pending.timer.cancel();
  }
  senders_.erase(it);
  ++stats_.give_ups;
  if (give_up_) give_up_(peer);
}

void ReliableChannel::on_delivery(const Delivery& d) {
  if (const auto* data = dynamic_cast<const ReliableData*>(d.message.get())) {
    on_data(d, *data);
    return;
  }
  if (const auto* ack = dynamic_cast<const ReliableAck*>(d.message.get())) {
    if (!d.corrupted) on_ack(d.from, *ack);
    return;
  }
  // Unreliable passthrough (e.g. data-plane batches sharing the endpoint).
  app_(d);
}

void ReliableChannel::on_data(const Delivery& d, const ReliableData& data) {
  if (d.corrupted) {
    // Checksum failure: behave as if the frame was lost — no ack, so the
    // sender's retransmission covers it.
    ++stats_.corrupt_dropped;
    return;
  }
  ReceiverState& rx = receivers_[d.from];
  if (data.seq >= rx.expected && !rx.buffered.contains(data.seq)) {
    assert_rx_transition(data.seq, RxSeq::kUnseen, RxSeq::kBuffered);
    rx.buffered.emplace(data.seq, data.payload);
  } else {
    // Duplicate: either still in the reorder buffer or already delivered
    // below the cursor. Both are idempotency self-edges in the rx table.
    assert_rx_transition(data.seq,
                         data.seq >= rx.expected ? RxSeq::kBuffered
                                                 : RxSeq::kDelivered,
                         data.seq >= rx.expected ? RxSeq::kBuffered
                                                 : RxSeq::kDelivered);
    ++stats_.duplicates_dropped;
  }
  deliver_ready(d.from, rx);
  // Cumulative ack (always re-sent, even for duplicates: the previous ack
  // may have been the casualty).
  auto ack = std::make_shared<ReliableAck>();
  ack->cumulative = rx.expected - 1;
  ++stats_.acks_sent;
  network_.send(local_, d.from, std::move(ack), kHeaderBytes);
}

void ReliableChannel::deliver_ready(Endpoint peer, ReceiverState& rx) {
  while (!rx.buffered.empty() && rx.buffered.begin()->first == rx.expected) {
    auto it = rx.buffered.begin();
    const std::uint64_t seq = it->first;
    MessagePtr payload = std::move(it->second);
    rx.buffered.erase(it);
    rx.expected = seq + 1;
    assert_rx_transition(seq, RxSeq::kBuffered, RxSeq::kDelivered);
    // Exactly-once, in-order: the app must never see a seq twice...
    ESH_INVARIANT("net", "reliable-no-dup-deliver",
                  seq > rx.last_delivered,
                  ::esh::contracts::Detail{}
                      .expected(rx.last_delivered + 1)
                      .actual(seq)
                      .note("peer " + std::to_string(peer.value())));
    // ...nor a gap between consecutive deliveries.
    ESH_INVARIANT("net", "reliable-no-gap", seq == rx.last_delivered + 1,
                  ::esh::contracts::Detail{}
                      .expected(rx.last_delivered + 1)
                      .actual(seq)
                      .note("peer " + std::to_string(peer.value())));
    rx.last_delivered = seq;
    ++stats_.delivered;
    Delivery up;
    up.from = peer;
    up.to = local_;
    up.message = std::move(payload);
    up.bytes = 0;  // framing accounted at the wire; app sees logical message
    app_(up);
  }
}

void ReliableChannel::on_ack(Endpoint peer, const ReliableAck& ack) {
  auto it = senders_.find(peer);
  if (it == senders_.end()) return;
  auto& pending = it->second.pending;
  for (auto p_it = pending.begin();
       p_it != pending.end() && p_it->first <= ack.cumulative;) {
    assert_tx_transition(p_it->first, TxMsg::kInFlight, TxMsg::kAcked);
    p_it->second.timer.cancel();
    p_it = pending.erase(p_it);
  }
}

#if ESH_INVARIANTS_ENABLED
void ReliableChannel::testing_rewind_rx_cursor(Endpoint peer,
                                               std::uint64_t to_seq) {
  receivers_[peer].expected = to_seq;
}

void ReliableChannel::testing_skip_rx_cursor(Endpoint peer,
                                             std::uint64_t to_seq) {
  auto& rx = receivers_[peer];
  rx.expected = to_seq;
  rx.buffered.clear();
}

void ReliableChannel::testing_force_overbudget_retransmit(Endpoint peer) {
  auto it = senders_.find(peer);
  if (it == senders_.end() || it->second.pending.empty()) return;
  auto& [seq, pending] = *it->second.pending.begin();
  pending.retries = config_.max_retries + 1;
  transmit(peer, seq, /*retransmit=*/true);
}
#endif

}  // namespace esh::net
