#include "sim/simulator.hpp"

#include <stdexcept>

namespace esh::sim {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Simulator::schedule(SimDuration delay, std::function<void()> fn) {
  if (delay < SimDuration::zero()) {
    throw std::invalid_argument{"Simulator::schedule: negative delay"};
  }
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument{"Simulator::schedule_at: time in the past"};
  }
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{when, next_seq_++, std::move(fn), state});
  ++live_events_;
  return EventHandle{std::move(state)};
}

std::uint64_t Simulator::run() { return run_until(kSimTimeMax); }

std::uint64_t Simulator::run_until(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.when > until) break;
    // Lazy deletion: cancelled entries are skipped on pop (cancel() cannot
    // remove from the middle of the heap).
    Entry entry = std::move(const_cast<Entry&>(top));
    queue_.pop();
    --live_events_;
    if (entry.state->cancelled) continue;
    check_dispatch_order(entry);
    record_dispatch(entry);
    now_ = entry.when;
    entry.state->fired = true;
    entry.fn();
    ++ran;
  }
  if (until != kSimTimeMax && now_ < until) now_ = until;
  return ran;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    --live_events_;
    if (entry.state->cancelled) continue;
    check_dispatch_order(entry);
    record_dispatch(entry);
    now_ = entry.when;
    entry.state->fired = true;
    entry.fn();
    return true;
  }
  return false;
}

PeriodicTimer::PeriodicTimer(Simulator& simulator, SimDuration period,
                             std::function<void()> fn)
    : PeriodicTimer(simulator, period, period, std::move(fn)) {}

PeriodicTimer::PeriodicTimer(Simulator& simulator, SimDuration initial_delay,
                             SimDuration period, std::function<void()> fn)
    : simulator_(simulator), period_(period), fn_(std::move(fn)) {
  if (period <= SimDuration::zero()) {
    throw std::invalid_argument{"PeriodicTimer: period must be > 0"};
  }
  arm(initial_delay);
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::stop() {
  running_ = false;
  pending_.cancel();
}

void PeriodicTimer::arm(SimDuration delay) {
  pending_ = simulator_.schedule(delay, [this] {
    if (!running_) return;
    // Re-arm before running so `fn_` may stop() the timer.
    arm(period_);
    fn_();
  });
}

}  // namespace esh::sim
