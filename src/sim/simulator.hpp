// Discrete-event simulation kernel. A single Simulator instance drives the
// entire emulated cluster: the network, host CPU scheduling, the
// coordination service, and the pub/sub engine all schedule callbacks on
// its virtual clock. Execution is deterministic: events at equal times fire
// in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace esh::sim {

class Simulator;

// Handle to a scheduled event; allows cancellation. Handles are cheap to
// copy and remain valid (as no-ops) after the event fired or was cancelled.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` from now. Negative delays are an error.
  EventHandle schedule(SimDuration delay, std::function<void()> fn);

  // Schedules at an absolute time >= now.
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  // Runs events until the queue is empty. Returns number of events run.
  std::uint64_t run();

  // Runs events with time <= until; the clock ends at `until` even if the
  // queue empties earlier. Returns number of events run.
  std::uint64_t run_until(SimTime until);

  // Runs a single event if one is pending. Returns true if one ran.
  bool step();

  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending_events() const { return live_events_; }

#if ESH_INVARIANTS_ENABLED
  // Seeded-fault seam for tests/test_contracts.cpp: warps the virtual clock
  // past queued events so the monotonicity invariant trips on the next run.
  // Compiled only in checked builds; never called by production code.
  void testing_warp_clock(SimTime t) { now_ = t; }
#endif

 private:
  struct Entry {
    SimTime when{};
    std::uint64_t seq = 0;  // tie-break: scheduling order
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;

    // Min-heap via std::priority_queue (which is a max-heap): reversed.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Dispatch-order invariants (checked builds): virtual time never moves
  // backwards, and events sharing a timestamp fire in scheduling order.
  void check_dispatch_order([[maybe_unused]] const Entry& entry) const {
    ESH_INVARIANT(
        "sim", "event-time-monotonic", entry.when >= now_,
        ::esh::contracts::Detail{}.expected(now_).actual(entry.when).note(
            "dispatch would move the virtual clock backwards"));
    ESH_INVARIANT(
        "sim", "fifo-tie-break",
        entry.when != last_fired_when_ || entry.seq > last_fired_seq_,
        ::esh::contracts::Detail{}
            .expected(std::string("seq > ") +
                      std::to_string(last_fired_seq_))
            .actual(entry.seq)
            .note("same-timestamp events must fire in scheduling order"));
  }
  void record_dispatch(const Entry& entry) {
    last_fired_when_ = entry.when;
    last_fired_seq_ = entry.seq;
  }

  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::size_t live_events_ = 0;  // excludes cancelled-but-queued entries
  SimTime last_fired_when_{SimTime::min()};
  std::uint64_t last_fired_seq_ = 0;
  std::priority_queue<Entry> queue_;
};

// Repeating timer built on the simulator; used for heartbeats, probe
// windows, and rate-schedule driven sources. Cancellation-safe: destroying
// the timer stops future ticks.
class PeriodicTimer {
 public:
  // `fn` runs every `period`, first at now + period (or now + initial_delay
  // when provided).
  PeriodicTimer(Simulator& simulator, SimDuration period,
                std::function<void()> fn);
  PeriodicTimer(Simulator& simulator, SimDuration initial_delay,
                SimDuration period, std::function<void()> fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(SimDuration delay);

  Simulator& simulator_;
  SimDuration period_;
  std::function<void()> fn_;
  EventHandle pending_;
  bool running_ = true;
};

}  // namespace esh::sim
