#include "engine/migration_strategy.hpp"

#include "analysis/protocol_spec.hpp"
#include "engine/engine.hpp"

namespace esh::engine {

namespace {

// Sentinel spec index for steps a strategy never takes; StateMachineSpec
// treats any out-of-range index as illegal.
constexpr std::size_t kUnmapped = ~std::size_t{0};

// The source paper's protocol (§IV-A Fig. 3): upstream hosts mirror the
// slice's channels to the replica while the source keeps serving, the
// source freezes once caught up to the duplication point, and the full
// checkpoint ships during a short stop window.
class BufferedReplayStrategy final : public MigrationStrategy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "buffered-replay";
  }
  [[nodiscard]] MigrationStrategyKind kind() const override {
    return MigrationStrategyKind::kBufferedReplay;
  }
  [[nodiscard]] const analysis::StateMachineSpec& spec() const override {
    return analysis::migration_spec();
  }
  [[nodiscard]] bool redirect_channels() const override { return false; }
  [[nodiscard]] std::size_t precopy_rounds(
      const EngineConfig& /*config*/) const override {
    return 0;
  }
  [[nodiscard]] bool delta_transfer() const override { return false; }
  [[nodiscard]] std::size_t spec_index(MigrationStep step) const override {
    // migration_spec states are declared in MigrationStep order, so the
    // paper-protocol steps map by value; kPark/kPrecopy never occur.
    switch (step) {
      case MigrationStep::kCreateReplica:
      case MigrationStep::kDuplication:
      case MigrationStep::kTransfer:
      case MigrationStep::kDirectoryUpdate:
      case MigrationStep::kTeardown:
      case MigrationStep::kAborting:
        return static_cast<std::size_t>(step);
      case MigrationStep::kPark:
      case MigrationStep::kPrecopy:
        return kUnmapped;
    }
    return kUnmapped;
  }
};

// Stop-and-restart: the duplication round runs in park mode — upstream
// hosts redirect the channels to the replica instead of mirroring, so the
// source drains to the park point, freezes, and one full checkpoint ships.
// Fewest bytes on the wire (no duplicate traffic, one state copy), longest
// event-delay spike (nothing serves between park and activation).
class StopAndRestartStrategy final : public MigrationStrategy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "stop-and-restart";
  }
  [[nodiscard]] MigrationStrategyKind kind() const override {
    return MigrationStrategyKind::kStopAndRestart;
  }
  [[nodiscard]] const analysis::StateMachineSpec& spec() const override {
    return analysis::stop_restart_spec();
  }
  [[nodiscard]] bool redirect_channels() const override { return true; }
  [[nodiscard]] std::size_t precopy_rounds(
      const EngineConfig& /*config*/) const override {
    return 0;
  }
  [[nodiscard]] bool delta_transfer() const override { return false; }
  [[nodiscard]] std::size_t spec_index(MigrationStep step) const override {
    switch (step) {
      case MigrationStep::kCreateReplica:
        return 0;
      case MigrationStep::kPark:
        return 1;
      case MigrationStep::kTransfer:
        return 2;
      case MigrationStep::kDirectoryUpdate:
        return 3;
      case MigrationStep::kTeardown:
        return 4;
      case MigrationStep::kAborting:
        return 5;
      case MigrationStep::kDuplication:
      case MigrationStep::kPrecopy:
        return kUnmapped;
    }
    return kUnmapped;
  }
};

// Incremental pre-copy: after the mirrored duplication round, the source
// ships its serialized image in rounds — round 1 the full baseline, later
// rounds only the pages dirtied since the previous round — while still
// serving. The final freeze ships just the last delta, so the stop window
// shrinks to the residual dirty set at the cost of extra transfer.
class IncrementalPrecopyStrategy final : public MigrationStrategy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "incremental-precopy";
  }
  [[nodiscard]] MigrationStrategyKind kind() const override {
    return MigrationStrategyKind::kIncrementalPrecopy;
  }
  [[nodiscard]] const analysis::StateMachineSpec& spec() const override {
    return analysis::precopy_spec();
  }
  [[nodiscard]] bool redirect_channels() const override { return false; }
  [[nodiscard]] std::size_t precopy_rounds(
      const EngineConfig& config) const override {
    return config.precopy_rounds;
  }
  [[nodiscard]] bool delta_transfer() const override { return true; }
  [[nodiscard]] std::size_t spec_index(MigrationStep step) const override {
    switch (step) {
      case MigrationStep::kCreateReplica:
        return 0;
      case MigrationStep::kDuplication:
        return 1;
      case MigrationStep::kPrecopy:
        return 2;
      case MigrationStep::kTransfer:
        return 3;
      case MigrationStep::kDirectoryUpdate:
        return 4;
      case MigrationStep::kTeardown:
        return 5;
      case MigrationStep::kAborting:
        return 6;
      case MigrationStep::kPark:
        return kUnmapped;
    }
    return kUnmapped;
  }
};

}  // namespace

const char* to_string(MigrationStrategyKind kind) {
  switch (kind) {
    case MigrationStrategyKind::kBufferedReplay:
      return "buffered-replay";
    case MigrationStrategyKind::kStopAndRestart:
      return "stop-and-restart";
    case MigrationStrategyKind::kIncrementalPrecopy:
      return "incremental-precopy";
  }
  return "unknown";
}

const MigrationStrategy& strategy_for(MigrationStrategyKind kind) {
  static const BufferedReplayStrategy buffered;
  static const StopAndRestartStrategy stop_restart;
  static const IncrementalPrecopyStrategy precopy;
  switch (kind) {
    case MigrationStrategyKind::kStopAndRestart:
      return stop_restart;
    case MigrationStrategyKind::kIncrementalPrecopy:
      return precopy;
    case MigrationStrategyKind::kBufferedReplay:
      break;
  }
  return buffered;
}

const MigrationStrategy* find_strategy(std::string_view name) {
  for (const MigrationStrategy* strategy : migration_strategies()) {
    if (strategy->name() == name) {
      return strategy;
    }
  }
  return nullptr;
}

const std::vector<const MigrationStrategy*>& migration_strategies() {
  static const std::vector<const MigrationStrategy*> all = {
      &strategy_for(MigrationStrategyKind::kBufferedReplay),
      &strategy_for(MigrationStrategyKind::kStopAndRestart),
      &strategy_for(MigrationStrategyKind::kIncrementalPrecopy),
  };
  return all;
}

}  // namespace esh::engine
