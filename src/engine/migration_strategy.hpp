// Pluggable migration protocols ("To Migrate or not to Migrate", arXiv
// 2203.03501): the coordinator's step chain in engine/engine.cpp is
// parameterized by a MigrationStrategy, so the buffer-and-replay scheme of
// the source paper (§IV-A Fig. 3), a stop-and-restart protocol (freeze the
// source, ship the full checkpoint, resume at the target — minimal
// transfer, maximal downtime) and an incremental pre-copy protocol
// (iterative dirty-delta shipping while the source serves, bounded final
// stop-and-copy — minimal downtime, extra transfer) share one coordinator,
// one abort matrix and one differential test battery.
//
// Strategies are stateless singletons looked up through a registry (the
// pluggable-capability idiom of mtl_operator_specification in SNIPPETS.md):
// a MigrationTask holds a strategy pointer, and every step change is
// checked against the strategy's own spec table in
// src/analysis/protocol_spec.cpp.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace esh::analysis {
class StateMachineSpec;
}

namespace esh::engine {

enum class MigrationStep;  // full declaration in engine/engine.hpp
struct EngineConfig;

// Stable identifiers for the registered protocols. The elastic enforcer
// plans in terms of this enum (predicted state size and input rate pick the
// protocol; see elastic/enforcer.hpp select_strategy).
enum class MigrationStrategyKind {
  kBufferedReplay,      // paper §IV-A: shadow duplication + catch-up freeze
  kStopAndRestart,      // park channels at the target, ship one checkpoint
  kIncrementalPrecopy,  // dirty-delta rounds, bounded final stop-and-copy
};

[[nodiscard]] const char* to_string(MigrationStrategyKind kind);

// Capability flags of one migration protocol. The coordinator chain asks
// the strategy what each phase does instead of branching on a protocol
// enum, so adding a strategy means adding a row here plus a spec table —
// not another copy of the step machine.
class MigrationStrategy {
 public:
  virtual ~MigrationStrategy() = default;
  MigrationStrategy(const MigrationStrategy&) = delete;
  MigrationStrategy& operator=(const MigrationStrategy&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual MigrationStrategyKind kind() const = 0;
  // The strategy's coordinator state machine (single source of truth shared
  // with the model checker and docs/SPEC_CATALOG.md).
  [[nodiscard]] virtual const analysis::StateMachineSpec& spec() const = 0;
  // Park mode: during the duplication round upstream hosts redirect the
  // slice's channels to the replica instead of mirroring them — the source
  // sees no event past the park point (stop-and-restart).
  [[nodiscard]] virtual bool redirect_channels() const = 0;
  // Dirty-delta rounds shipped before the final freeze (0 = none).
  [[nodiscard]] virtual std::size_t precopy_rounds(
      const EngineConfig& config) const = 0;
  // Final state transfer ships only the pages changed since the last
  // pre-copy round, against the baseline the replica already holds.
  [[nodiscard]] virtual bool delta_transfer() const = 0;
  // Index of `step` in spec() — states are strategy-local, so the shared
  // MigrationStep enum maps through here. Steps a strategy never takes map
  // out of range, which spec().legal() reports as illegal.
  [[nodiscard]] virtual std::size_t spec_index(MigrationStep step) const = 0;

 protected:
  MigrationStrategy() = default;
};

// Registry: every strategy is a process-lifetime singleton.
[[nodiscard]] const MigrationStrategy& strategy_for(MigrationStrategyKind kind);
// nullptr when no strategy has that name.
[[nodiscard]] const MigrationStrategy* find_strategy(std::string_view name);
// All registered strategies, in MigrationStrategyKind declaration order
// (the differential suite and the bench sweep iterate this).
[[nodiscard]] const std::vector<const MigrationStrategy*>&
migration_strategies();

}  // namespace esh::engine
