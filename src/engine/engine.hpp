// The distributed stream-processing engine (STREAMMINE3G role): deploys a
// DAG of operators as slices over cluster hosts, routes events, and
// migrates slices between hosts with minimal service interruption
// (paper §IV-A, Figure 3).
//
// The Engine object plays the part of the runtime's coordinator living on
// the manager host: every migration step is a control message exchanged
// with host runtimes over the simulated network, so migration latency
// emerges from real message, CPU, and state-transfer costs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cost_model.hpp"
#include "cluster/host.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "engine/host_runtime.hpp"
#include "engine/migration_strategy.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "sim/simulator.hpp"

namespace esh {
class ThreadPool;
}

namespace esh::engine {

// Passive replication (STREAMMINE3G-style, paper §III): slices checkpoint
// their state periodically to a standby store on the manager host, and
// every slice keeps an in-memory log of its emitted events, truncated when
// the downstream slice checkpoints. After a host failure, lost slices
// restart from their last checkpoint and upstreams replay the logged
// suffix; per-channel sequence numbers deduplicate re-emissions, giving
// exactly-once processing across crashes.
struct CheckpointConfig {
  bool enabled = false;
  SimDuration interval = seconds(30);
};

struct EngineConfig {
  // Output batching period of every slice: emitted events buffer locally
  // and ship on this cadence (dominant steady-state delay component; the
  // EP operator effectively waits for the slowest M slice's flush).
  SimDuration flush_interval = millis(75);
  CheckpointConfig checkpoints{};
  // Host probe period (heartbeats to the manager).
  SimDuration probe_interval = seconds(5);
  // Pacing of the coordinator's migration steps: each control action waits
  // up to this long, modeling the manager's orchestration loop granularity.
  SimDuration control_tick = millis(50);
  // Most events one in-order delivery run may coalesce into a single
  // handler batch (Handler::can_batch / on_batch_start). Affects real
  // wall-clock only: each batched event keeps its own simulated CPU job,
  // cost and lock, so simulated timing is independent of this cap.
  std::size_t dispatch_batch_max = 64;
  // Real worker threads for the pipeline's per-event wall-clock compute
  // (Engine::worker_pool): AP route planning, M matching and EP partial-list
  // merge assembly all fan out over the same pool. The count includes the
  // simulator thread; 0 or 1 keeps every tier inline. Simulated results are
  // bit-identical for every value -- only wall-clock changes.
  std::size_t worker_threads = 1;
  // Back-compat alias from the M-tier-only offload era: the pool is sized
  // max(worker_threads, match_threads), so configs that still set only
  // match_threads keep driving the (now pipeline-wide) pool.
  std::size_t match_threads = 1;
  // Run every control-plane exchange (migration protocol, checkpoint
  // shipping, recovery orchestration) over net::ReliableChannel:
  // ack/retransmit with exponential backoff makes the coordinator survive
  // lossy/duplicating/reordering links. Off by default: with no channel the
  // wire traffic (and thus all timing) is byte-identical to the raw engine.
  // Probes are deliberately excluded either way — their silence is the
  // failure detector's signal.
  bool reliable_control = false;
  net::ReliableChannelConfig reliable{};
  // Incremental-precopy strategy: at most this many dirty-delta rounds ship
  // before the final stop-and-copy (the engine/precopy-rounds-bounded
  // invariant), and deltas are diffed at this page granularity.
  std::size_t precopy_rounds = 3;
  std::size_t precopy_page_bytes = 64;
  cluster::CostModel cost;
};

// How a migration ended. Anything but kCompleted leaves the slice where the
// abort semantics put it: still on the source (kAbortedDstFailed with the
// slice resumed), on the destination (a source crash that raced the state
// transfer counts as kCompleted), or lost and handed to recovery.
enum class MigrationOutcome {
  kCompleted,
  kRejected,         // invalid slice/destination; nothing happened
  kAbortedSrcFailed, // source host died mid-protocol
  kAbortedDstFailed, // destination host died mid-protocol
};

[[nodiscard]] const char* to_string(MigrationOutcome outcome);

// Coordinator-side protocol position of an in-flight migration
// (paper §IV-A, Figure 3). Namespace-scoped so the transition-legality
// relation is checkable from tests as well as from the engine itself.
enum class MigrationStep {
  kCreateReplica,    // awaiting CreateReplicaAck from dst
  kDuplication,      // awaiting StartDuplicationAcks from upstreams
  kTransfer,         // freeze sent; awaiting ActivatedAck from dst
  kDirectoryUpdate,  // awaiting DirectoryUpdateAcks from all hosts
  kTeardown,         // awaiting TeardownAck from src
  kAborting,         // awaiting AbortMigrationAck / AbortReplicaAck
  // Strategy-specific steps, appended so the 0-5 indices above stay aligned
  // with the migration_spec state order (tests/test_analysis.cpp pins it).
  kPark,             // stop-and-restart: awaiting redirect acks + drain
  kPrecopy,          // incremental-precopy: awaiting this round's PrecopyAck
};

[[nodiscard]] const char* to_string(MigrationStep step);

// The legal coordinator transitions of the buffered-replay (paper) protocol,
// including the abort edges taken when a participant host dies mid-protocol
// and the kAborting -> kDirectoryUpdate edge (an ActivatedAck racing an
// abort means the move actually completed).
[[nodiscard]] bool migration_transition_legal(MigrationStep from,
                                              MigrationStep to);

// Contract-layer assertion of the relation above (no-op in default builds);
// every coordinator step-change funnels through the strategy-aware overload,
// which checks the transition against the strategy's own spec table.
void assert_migration_transition(MigrationId id, SliceId slice,
                                 MigrationStep from, MigrationStep to);
void assert_migration_transition(const MigrationStrategy& strategy,
                                 MigrationId id, SliceId slice,
                                 MigrationStep from, MigrationStep to);

// ---- fine-grained elasticity: key-level slice split / merge -----------------

// A split refines one slice's key coverage by a bit: the parent keeps one
// half, a fresh child slice takes the other. A merge is the inverse: a
// retiree's coverage and state fold back into its coverage-sibling
// survivor. See PROTOCOL.md for the cut-over sequence.
enum class TransitionKind { kSplit, kMerge };

[[nodiscard]] const char* to_string(TransitionKind kind);

// Coordinator-side protocol position of an in-flight split.
enum class SplitStep {
  kCreateChild,  // replica + directory registration for the child
  kCutOver,      // atomic routing flip (transient within one callback)
  kDrain,        // parent draining to the cut; awaiting SplitStateMessage
  kActivate,     // child restoring from the captured half
  kAborting,     // child host died pre-cut-over; tearing the replica down
};

// Coordinator-side protocol position of an in-flight merge.
enum class MergeStep {
  kCutOver,       // atomic routing flip (transient within one callback)
  kDrainRetiree,  // retiree draining to its final vector; awaiting capture
  kAbsorb,        // survivor absorbing the retiree's state
  kTeardown,      // retiring the drained retiree instance
};

[[nodiscard]] const char* to_string(SplitStep step);
[[nodiscard]] const char* to_string(MergeStep step);

// Legal coordinator transitions (checked via the contract layer on every
// step change, like the migration state machine).
[[nodiscard]] bool split_transition_legal(SplitStep from, SplitStep to);
[[nodiscard]] bool merge_transition_legal(MergeStep from, MergeStep to);

void assert_split_transition(MigrationId id, SliceId slice, SplitStep from,
                             SplitStep to);
void assert_merge_transition(MigrationId id, SliceId slice, MergeStep from,
                             MergeStep to);

struct TransitionReport {
  MigrationId id;
  TransitionKind kind = TransitionKind::kSplit;
  SliceId parent;  // split parent / merge survivor
  SliceId child;   // split child / merge retiree
  bool completed = false;  // false: rejected or aborted
  SimTime requested{};
  SimTime cutover{};    // routing flipped (start of the drain)
  SimTime finished{};
  std::size_t moved = 0;  // state entries split off (splits only)
};

using TransitionCallback = std::function<void(const TransitionReport&)>;

struct MigrationReport {
  MigrationId id;
  SliceId slice;
  HostId src;
  HostId dst;
  // Name of the protocol that ran the move (a registry singleton's name(),
  // so the view outlives every report).
  std::string_view strategy = "buffered-replay";
  MigrationOutcome outcome = MigrationOutcome::kCompleted;
  SimTime requested{};
  SimTime frozen{};     // processing stopped on the source host
  SimTime activated{};  // processing resumed on the destination host
  SimTime completed{};  // old slice torn down, directory converged
  std::size_t state_bytes = 0;
  // Protocol byte accounting (the tradeoff axes of fig_migration_strategies):
  // the final state transfer as shipped (== state_bytes for a full copy,
  // the dirty-page total for a delta one), the pre-copy rounds, and the
  // shadow-mirror duplicates sent while this move was in flight.
  std::size_t transfer_bytes = 0;
  std::size_t precopy_bytes = 0;
  std::size_t duplicate_bytes = 0;

  [[nodiscard]] SimDuration total_duration() const {
    return completed - requested;
  }
  [[nodiscard]] SimDuration interruption() const { return activated - frozen; }
  [[nodiscard]] std::size_t bytes_shipped() const {
    return transfer_bytes + precopy_bytes + duplicate_bytes;
  }
};

using MigrationCallback = std::function<void(const MigrationReport&)>;

class Engine {
 public:
  // `manager_host` identifies the dedicated host carrying the coordinator's
  // control endpoint (not an engine worker host).
  Engine(sim::Simulator& simulator, net::Network& network, HostId manager_host,
         EngineConfig config, std::uint64_t seed);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- cluster membership ----
  void add_host(cluster::Host& host);
  // Host must hold no slices.
  void remove_host(HostId host);
  [[nodiscard]] bool has_host(HostId host) const;
  [[nodiscard]] std::vector<HostId> hosts() const;

  // ---- deployment ----
  // Deploys the topology once. `placement` maps operator name to one HostId
  // per slice (vector size must equal the operator's slice count).
  void deploy(
      const Topology& topology,
      const std::unordered_map<std::string, std::vector<HostId>>& placement);

  // ---- data ----
  void inject(std::string_view op, std::size_t slice_index, PayloadPtr payload);

  // ---- elasticity mechanism ----
  // Migrates `slice` to `dst`. Migrations are executed one at a time in
  // request order (the enforcer minimizes their number; serializing them
  // bounds interference). The callback always fires exactly once and carries
  // the outcome: an unknown slice or destination is rejected through the
  // callback (kRejected), and a source/destination crash mid-protocol aborts
  // the move cleanly instead of wedging the queue.
  void migrate(SliceId slice, HostId dst, MigrationCallback callback);
  // Strategy-selecting overload; the two-argument form runs the paper's
  // buffered-replay protocol, so every existing caller is unchanged.
  void migrate(SliceId slice, HostId dst, MigrationStrategyKind strategy,
               MigrationCallback callback);
  [[nodiscard]] std::size_t pending_migrations() const {
    return migration_queue_.size() + (current_migration_ ? 1 : 0);
  }

  // ---- fine-grained elasticity: key-level split / merge ----
  // Splits `parent`'s key coverage in two: the parent keeps one half and a
  // fresh child slice hosted on `dst` takes the other. Serialized with
  // migrations on the same coordinator (one elastic operation in flight at
  // a time). The callback fires exactly once; invalid arguments reject
  // through it (completed=false).
  void split_slice(SliceId parent, HostId dst, TransitionCallback callback);
  // Inverse of split_slice: `retiree`'s coverage and state fold back into
  // its coverage-sibling `survivor`, and the retiree slice is torn down.
  void merge_slices(SliceId survivor, SliceId retiree,
                    TransitionCallback callback);
  [[nodiscard]] std::size_t pending_transitions() const {
    return transition_queue_.size() + (current_transition_ ? 1 : 0);
  }
  [[nodiscard]] std::uint64_t splits_completed() const {
    return splits_completed_;
  }
  [[nodiscard]] std::uint64_t merges_completed() const {
    return merges_completed_;
  }
  // Monotone counter bumped at every split/merge cut-over; routing plans
  // stamped with an older epoch predate the current broadcast fan.
  [[nodiscard]] std::uint64_t routing_epoch() const { return routing_epoch_; }
  // Deployment seed (deterministic per-slice timer phases derive from it).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  // Key coverage currently routed to `slice` (throws for unknown slices).
  [[nodiscard]] KeyCoverage slice_coverage(SliceId slice) const;
  // Chaos hook: fired after every coordinator step change of an in-flight
  // split or merge; `step` matches to_string(SplitStep/MergeStep). The hook
  // may fail hosts, which is exactly what the torture tests do.
  void on_elastic_step(
      std::function<void(const TransitionReport&, std::string_view)> hook) {
    elastic_step_hook_ = std::move(hook);
  }
  // Testing seam: the next split cut-over "forgets" to refine the parent's
  // coverage, leaving parent and child overlapping — the key-coverage
  // completeness contract must trip (checked builds only).
  bool testing_corrupt_split_plan = false;
  // Chaos hook: fired when the coordinator of an in-flight migration enters
  // a step (`step` matches to_string(MigrationStep); kPrecopy fires once per
  // round). The hook may fail hosts — the crash-at-every-step torture tests
  // do exactly that.
  void on_migration_step(
      std::function<void(const MigrationReport&, std::string_view)> hook) {
    migration_step_hook_ = std::move(hook);
  }
  // Testing seam: issue one pre-copy round past the strategy's bound — the
  // precopy-rounds-bounded contract must trip (checked builds only).
  bool testing_force_extra_precopy_round = false;
  // Testing seam: forces the source slice back to kActive right before the
  // coordinator processes a stop-and-restart ActivatedAck — the
  // stop-restart-no-dual-active contract must trip (checked builds only).
  bool testing_force_src_active_on_activate = false;
  // Shadow-mirror duplicate traffic (bytes) sent by all hosts since deploy;
  // the coordinator differences it around each move for the report.
  void note_duplicate_bytes(std::size_t bytes) {
    duplicate_bytes_total_ += bytes;
  }

  // ---- probes ----
  // All engine hosts start sending HostProbe heartbeats to `target`.
  void enable_probes(net::Endpoint target);

  // ---- reliable control plane (requires config.reliable_control) ----
  // Fires when a control-plane peer exhausted its retry budget (the
  // reliable channel gave up on it). The HostId is resolved from the peer
  // endpoint; wire this to the failure detector so unreachable peers are
  // convicted by evidence instead of waiting out the probe silence.
  void on_control_unreachable(std::function<void(HostId)> callback) {
    control_unreachable_ = std::move(callback);
  }
  [[nodiscard]] bool reliable_control_enabled() const {
    return config_.reliable_control;
  }
  // Aggregated reliable-channel statistics (coordinator + all live host
  // runtimes); zeroes when reliable_control is off.
  [[nodiscard]] net::ReliableStats reliable_stats() const;

  // ---- passive replication (requires config.checkpoints.enabled) ----
  // Abrupt host failure: every slice on the host is lost (its runtime is
  // quarantined so in-flight CPU work dies harmlessly). Returns the lost
  // slices; recover each with recover_slice().
  std::vector<SliceId> fail_host(HostId host);

  // Restores a lost slice on `dst` from its last checkpoint and asks the
  // upstream logs (and the external injection log) to replay the suffix.
  // A slice with no checkpoint yet bootstraps from scratch: the retained
  // logs are complete precisely because no checkpoint ever truncated them,
  // so a full replay reconstructs the state.
  void recover_slice(SliceId slice, HostId dst, std::function<void()> done);

  // True when the slice's directory primary is dead or no longer holds an
  // instance of the slice (i.e. it needs recover_slice to run again).
  [[nodiscard]] bool slice_lost(SliceId slice) const;

  // Standby-store endpoint slices ship checkpoints to.
  [[nodiscard]] net::Endpoint checkpoint_store_endpoint() const {
    return control_endpoint_;
  }
  [[nodiscard]] bool has_checkpoint(SliceId slice) const {
    return checkpoints_.contains(slice);
  }

  // ---- introspection ----
  [[nodiscard]] const StaticConfig& static_config() const { return *static_; }
  [[nodiscard]] HostId slice_host(SliceId slice) const;
  [[nodiscard]] SliceId slice_id(std::string_view op,
                                 std::size_t slice_index) const;
  [[nodiscard]] std::vector<SliceId> slices_on(HostId host) const;
  [[nodiscard]] SliceRuntime* slice_runtime(SliceId slice);
  [[nodiscard]] std::uint64_t migrations_completed() const {
    return migrations_completed_;
  }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  // Worker pool for the pipeline's batched wall-clock compute (AP route
  // planning, M matching, EP merge assembly); nullptr when
  // max(config.worker_threads, config.match_threads) <= 1. Handlers fan
  // their on_batch_start precompute across it and join before any result is
  // committed on the simulator thread.
  [[nodiscard]] ThreadPool* worker_pool() { return worker_pool_.get(); }
  // Back-compat name for the pool from the M-tier-only offload era.
  [[nodiscard]] ThreadPool* match_pool() { return worker_pool(); }

 private:
  struct MigrationTask {
    // Protocol position of the coordinator; determines the correct abort
    // action when the source or destination host dies.
    using Step = MigrationStep;
    MigrationReport report;
    MigrationCallback callback;
    // Protocol of this move; set at migrate() and never null afterwards.
    const MigrationStrategy* strategy = nullptr;
    std::vector<std::pair<SliceId, SeqNo>> catchup;
    Step step = Step::kCreateReplica;
    // Every step change goes through here so the state-machine contract
    // sees it against the strategy's own spec table (illegal transitions
    // throw in checked builds).
    void set_step(Step next) {
      assert_migration_transition(*strategy, report.id, report.slice, step,
                                  next);
      step = next;
    }
    // Incremental precopy: the in-flight round (1-based; 0 before the first)
    // and the delta bytes acknowledged so far.
    std::size_t round = 0;
    std::size_t precopy_bytes = 0;
    // Engine-wide duplicate-bytes counter at the move's start (migrations
    // are serialized, so the difference at completion is this move's).
    std::size_t dup_bytes_base = 0;
    // Outstanding acks tracked as sets (not counters) so a dead host can be
    // struck from the wait without wedging the protocol.
    std::set<SliceId> pending_dup_slices;
    std::set<HostId> pending_update_hosts;
    // While kAborting: the host whose ack resolves the abort, and the
    // outcome to report (first failure wins).
    HostId abort_peer;
    MigrationOutcome abort_outcome = MigrationOutcome::kCompleted;
  };

  // One in-flight split or merge, serialized with migrations: the
  // coordinator runs at most one elastic operation (of either family) at a
  // time, migrations first.
  struct TransitionTask {
    TransitionReport report;
    TransitionCallback callback;
    HostId dst;               // split: child host (replaced if it dies)
    HostId retiree_host;      // merge: where the retiree drains
    KeyCoverage parent_cov;   // split: parent's post-cut-over coverage
    KeyCoverage child_cov;    // split: child's coverage
    KeyCoverage merged_cov;   // merge: survivor's post-cut-over coverage
    SplitStep split_step = SplitStep::kCreateChild;
    MergeStep merge_step = MergeStep::kCutOver;
    void set_split_step(SplitStep next) {
      assert_split_transition(report.id, report.parent, split_step, next);
      split_step = next;
    }
    void set_merge_step(MergeStep next) {
      assert_merge_transition(report.id, report.parent, merge_step, next);
      merge_step = next;
    }
    // kCreateChild: outstanding directory acks (dead hosts are struck).
    std::set<HostId> pending_update_hosts;
    bool create_acked = false;
  };

  // Roll-forward record of a slice mid split/merge (checkpointed clusters
  // only): if the slice's host dies before its next checkpoint proves the
  // capture/absorb durable (coverage_epoch >= epoch), recovery re-drives the
  // slice's leg of the protocol — holds are re-installed from `cutover` and
  // the deterministic replay reproduces the identical capture.
  struct RollForward {
    enum class Role { kSplitParent, kMergeSurvivor, kMergeRetiree };
    Role role = Role::kSplitParent;
    MigrationId transition;
    std::uint64_t epoch = 0;  // coverage epoch the pending capture produces
    SliceId other;            // split: child; merge: the opposite slice
    KeyCoverage cov;          // split: child coverage (for re-capture)
    std::vector<std::pair<SliceId, SeqNo>> cutover;
    // Merge survivor: the retiree's captured state, once shipped.
    std::shared_ptr<const std::vector<std::byte>> state;
    std::vector<WireEvent> log;
    bool state_ready = false;
  };

  void start_next_migration();
  void finish_migration(MigrationOutcome outcome);
  void start_next_transition();
  void finish_transition(bool completed);
  void begin_split_transition();
  void begin_merge_transition();
  void split_cutover();
  // Split/merge control traffic is dispatched before the migration block in
  // on_control; returns true when the message was consumed.
  bool handle_transition_control(const net::Message* msg);
  void handle_transition_host_failure(HostId host);
  // Re-drive the pending protocol leg of a just-recovered slice (see
  // RollForward).
  void redrive_rollforward(SliceId slice);
  bool fire_elastic_step(std::string_view step);
  [[nodiscard]] std::vector<std::pair<SliceId, SeqNo>> capture_cut_vector(
      SliceId slice);
  [[nodiscard]] StaticConfig::OperatorInfo& mutable_op_of(SliceId slice);
  void handle_host_failure(HostId host);
  void after_directory_acks();
  void broadcast_location(SliceId slice, HostId host);
  void on_control(const net::Delivery& delivery);
  void send_freeze();
  // Fires the migration chaos hook for the current step; returns false when
  // the hook failed a host and the migration is no longer the same one.
  bool fire_migration_step();
  // Advance past the duplication/park round: into the first pre-copy round
  // for a pre-copying strategy, straight to the freeze otherwise.
  void advance_after_duplication();
  // Issue the next pre-copy round (task.round already bumped by caller via
  // set_step); enforces the precopy-rounds-bounded invariant.
  void start_precopy_round();
  // Stop-and-restart abort repair: the source resumed but the events
  // redirected since the park went only to the now-dead replica. Re-send
  // them from the upstream-backup logs and the external injection log.
  void repair_redirected_channels(SliceId slice,
                                  const std::vector<std::pair<SliceId, SeqNo>>&
                                      processed);
  void step_after_tick(std::function<void()> fn);
  void migration_step(std::function<void()> fn);
  void send_control(net::Endpoint to, net::MessagePtr msg,
                    std::size_t bytes = 96);
  // A reliable channel (the coordinator's or a host runtime's) exhausted
  // its retry budget toward `peer`; resolve to a HostId and escalate.
  void notify_control_give_up(net::Endpoint peer);
  [[nodiscard]] std::vector<SliceId> upstream_slices(SliceId slice) const;
  [[nodiscard]] std::vector<SliceId> downstream_slices(SliceId slice) const;
  // Record the regenerated-stream base per consumer for a multi-input slice
  // about to recover (no-op for single-input slices, whose replay preserves
  // the original numbering).
  void register_recovery_rebases(SliceId slice);
  // Rewind a recovering slice's restored channel watermarks below the
  // regenerated-stream base of any upstream in recovery_rebases_.
  [[nodiscard]] std::vector<std::pair<SliceId, SeqNo>> clamp_to_rebases(
      SliceId slice, std::vector<std::pair<SliceId, SeqNo>> processed) const;

  sim::Simulator& simulator_;
  net::Network& network_;
  EngineConfig config_;
  std::unique_ptr<ThreadPool> worker_pool_;
  Rng rng_;
  HostId manager_host_;
  net::Endpoint control_endpoint_;
  // Non-null iff config_.reliable_control: owns the control endpoint's
  // binding and retransmits coordinator control traffic.
  std::unique_ptr<net::ReliableChannel> control_channel_;
  std::function<void(HostId)> control_unreachable_;
  // Endpoint -> host for give-up escalation. Append-only: endpoints are
  // never reused, and a stale entry for a removed host resolves to a HostId
  // the detector already convicted (or stopped watching).
  std::map<net::Endpoint, HostId> control_peers_;

  std::shared_ptr<const StaticConfig> static_;
  // Same object as static_, mutated only inside an atomic cut-over callback
  // (the simulator is single-threaded; worker pools only run inside
  // on_batch_start, which joins before returning, so no reader can observe
  // a half-applied fan change).
  std::shared_ptr<StaticConfig> mutable_static_;
  std::unordered_map<HostId, std::unique_ptr<HostRuntime>> host_runtimes_;
  // Authoritative directory at the coordinator.
  std::unordered_map<SliceId, SliceLocation> directory_;
  bool deployed_ = false;
  std::uint64_t next_slice_ = 1;
  std::uint64_t next_migration_ = 1;
  std::uint64_t migrations_completed_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t routing_epoch_ = 0;
  std::uint64_t splits_completed_ = 0;
  std::uint64_t merges_completed_ = 0;

  std::deque<MigrationTask> migration_queue_;
  std::optional<MigrationTask> current_migration_;
  std::deque<TransitionTask> transition_queue_;
  std::optional<TransitionTask> current_transition_;
  std::map<SliceId, RollForward> rollforward_;
  std::function<void(const TransitionReport&, std::string_view)>
      elastic_step_hook_;
  std::function<void(const MigrationReport&, std::string_view)>
      migration_step_hook_;
  // Mirror-duplication wire bytes since engine start; per-migration figures
  // are differences of snapshots (migrations are serialized).
  std::size_t duplicate_bytes_total_ = 0;
  std::optional<net::Endpoint> probe_target_;
  // Per-slice sequence counters of the external injection channel.
  std::unordered_map<SliceId, SeqNo> next_inject_seq_;

  // Passive replication: standby checkpoint store + external-channel log
  // + in-flight recoveries. Quarantined runtimes of failed hosts stay
  // alive so their pending CPU-job callbacks die harmlessly.
  struct StoredCheckpoint {
    std::shared_ptr<const std::vector<std::byte>> state;
    std::vector<std::pair<SliceId, SeqNo>> processed;
    std::vector<std::pair<SliceId, SeqNo>> out_seqs;
    std::vector<WireEvent> log;  // output backlog at the cut
    // Coverage epoch of the state (bumped by every completed split capture
    // or merge absorb); restored so a recovered slice's epoch stays
    // comparable against RollForward::epoch.
    std::uint64_t coverage_epoch = 0;
  };
  std::unordered_map<SliceId, StoredCheckpoint> checkpoints_;
  std::unordered_map<SliceId, std::deque<WireEvent>> inject_log_;
  std::unordered_map<SliceId, std::function<void()>> recoveries_;
  // Watermarks of each slice's most recent recovery replay request. When
  // several slices recover concurrently, one activated earlier may have
  // broadcast its request before a co-recovering upstream was live; the
  // upstream re-receives these on activation so its restored log can serve
  // them (duplicate replays are deduplicated by the channel protocol).
  std::unordered_map<SliceId, std::vector<std::pair<SliceId, SeqNo>>>
      pending_replays_;
  // Output-stream rebases of recovered multi-input slices, upstream ->
  // (consumer -> regenerated first sequence number). A recovered
  // multi-input slice regenerates its post-cut output with fresh sequence
  // numbers starting at its checkpoint's out_seqs. Live consumers are
  // rewound by the recovery's directory update, but a consumer that is
  // itself mid-recovery restores channel watermarks that still count the
  // OLD stream; those are clamped to the regenerated base on restore (see
  // clamp_to_rebases), otherwise regenerated events numbered at or below
  // the stale watermark are deduplicated although their content was never
  // processed. An entry expires when the consumer's next checkpoint
  // reaches the base, proving it has advanced in the new numbering.
  std::map<SliceId, std::map<SliceId, SeqNo>> recovery_rebases_;
  std::vector<std::unique_ptr<HostRuntime>> failed_runtimes_;

  friend class HostRuntime;
  friend class SliceRuntime;
};

}  // namespace esh::engine
