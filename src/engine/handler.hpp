// Operator handler interface: the application logic of an operator slice.
// All slices of an operator run the same handler code; each slice owns a
// private handler instance whose state is never shared with sibling slices
// (paper §III). Handlers declare the lock mode and simulated CPU cost of
// each event so the host model charges work faithfully.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/host.hpp"
#include "common/keyspace.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"
#include "engine/event.hpp"

namespace esh::engine {

// How an emitted event selects destination slice(s) of the target operator.
class Routing {
 public:
  enum class Kind { kToIndex, kBroadcast, kHash };

  static Routing to_index(std::size_t index) {
    return Routing{Kind::kToIndex, index, 0};
  }
  static Routing broadcast() { return Routing{Kind::kBroadcast, 0, 0}; }
  // Modulo-hash partitioning (the AP and EP dispatch rule).
  static Routing hash(std::uint64_t key) { return Routing{Kind::kHash, 0, key}; }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] std::uint64_t key() const { return key_; }

 private:
  Routing(Kind kind, std::size_t index, std::uint64_t key)
      : kind_(kind), index_(index), key_(key) {}
  Kind kind_;
  std::size_t index_;
  std::uint64_t key_;
};

// Capabilities a handler may use while processing an event.
class Context {
 public:
  virtual ~Context() = default;
  virtual void emit(std::string_view op, Routing routing, PayloadPtr payload) = 0;
  [[nodiscard]] virtual SimTime now() const = 0;
  [[nodiscard]] virtual std::size_t slice_index() const = 0;
  [[nodiscard]] virtual std::size_t slice_count(std::string_view op) const = 0;
  // Current broadcast fan of `op`: the slice indices a kBroadcast emit
  // reaches right now, ascending. Changes when a slice splits or merges;
  // handlers stamp it into payloads whose downstream completion logic must
  // match the fan the event was actually routed with.
  [[nodiscard]] virtual std::vector<std::uint32_t> fan_indices(
      std::string_view op) const = 0;
  // Monotone counter bumped at every split/merge cut-over; lets handlers
  // detect that a routing plan computed earlier predates the current fan.
  [[nodiscard]] virtual std::uint64_t routing_epoch() const = 0;
};

class Handler {
 public:
  virtual ~Handler() = default;

  virtual void on_event(Context& ctx, const PayloadPtr& payload) = 0;

  // ---- batched processing ----
  // True when `payload` may be coalesced with adjacent batchable events of
  // the same in-order delivery run into one precomputed batch. All of a
  // batch's jobs are submitted consecutively within one simulator callback
  // and jobs of one slice dispatch in submission order, so no foreign job of
  // this slice (checkpoint, freeze, another channel's run) interleaves
  // between a batch's events. A handler may therefore opt in even for
  // state-mutating events (e.g. EP's W-locked partial-list merges), as long
  // as the post-batch state and the per-event emissions are byte-identical
  // to processing the same events serially; read-only events (publication
  // matching) satisfy that trivially. Caveat for kNone/kRead events: their
  // jobs run concurrently in simulated time and may *complete* out of
  // submission order, so precomputed per-event results must be consumed by
  // key, not by position (see MHandler/ApHandler).
  [[nodiscard]] virtual bool can_batch(const PayloadPtr& payload) const {
    (void)payload;
    return false;
  }
  // Called once per coalesced batch, immediately before the first of its
  // events is processed (i.e. after every earlier job of the slice, so the
  // handler state it observes is exactly the serial-processing state); lets
  // the handler run one batched computation whose per-event results the
  // subsequent on_event calls consume. The simulated cost of the batch is
  // still charged per event through cost_units(), so batching never changes
  // simulated work or scheduling.
  virtual void on_batch_start(Context& ctx,
                              const std::vector<PayloadPtr>& batch) {
    (void)ctx;
    (void)batch;
  }

  // Simulated single-core cost of processing `payload` now (cost-model
  // units); evaluated when the event is handed to the host scheduler.
  [[nodiscard]] virtual double cost_units(const PayloadPtr& payload) const = 0;

  // Slice-lock mode for processing `payload` (R parallelizes across cores).
  [[nodiscard]] virtual cluster::LockMode lock_mode(
      const PayloadPtr& payload) const = 0;

  // ---- state management (migration support) ----
  virtual void serialize_state(BinaryWriter& w) const { (void)w; }
  virtual void restore_state(BinaryReader& r) { (void)r; }
  [[nodiscard]] virtual std::size_t state_bytes() const { return 0; }
  // CPU cost of instantiating an empty replica (runtime + library setup).
  [[nodiscard]] virtual double replica_init_units() const { return 5e4; }

  // ---- key-level state split / merge (fine-grained elasticity) ----
  // A splittable handler partitions its state by routing key. split_state
  // atomically serializes the part covered by `cov` (restorable by
  // restore_state) and removes it from the live state, returning the number
  // of state entries moved; absorb_state merges a previously split-off part
  // back in. Non-splittable handlers keep the defaults.
  [[nodiscard]] virtual bool supports_split() const { return false; }
  [[nodiscard]] virtual std::size_t split_state(const KeyCoverage& cov,
                                                BinaryWriter& w) {
    (void)cov;
    (void)w;
    throw std::logic_error{"handler does not support split_state"};
  }
  virtual void absorb_state(BinaryReader& r) {
    (void)r;
    throw std::logic_error{"handler does not support absorb_state"};
  }
};

using HandlerFactory =
    std::function<std::unique_ptr<Handler>(std::size_t slice_index)>;

struct OperatorSpec {
  std::string name;
  std::size_t slices = 1;
  HandlerFactory factory;
};

struct DagEdge {
  std::string from;
  std::string to;
};

struct Topology {
  std::vector<OperatorSpec> operators;
  std::vector<DagEdge> edges;
};

}  // namespace esh::engine
