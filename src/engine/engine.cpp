#include "engine/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"

namespace esh::engine {

Engine::Engine(sim::Simulator& simulator, net::Network& network,
               HostId manager_host, EngineConfig config, std::uint64_t seed)
    : simulator_(simulator),
      network_(network),
      config_(config),
      rng_(seed),
      manager_host_(manager_host) {
  control_endpoint_ = network_.new_endpoint();
  network_.bind(control_endpoint_, manager_host_,
                [this](const net::Delivery& d) { on_control(d); });
}

Engine::~Engine() {
  host_runtimes_.clear();
  if (network_.bound(control_endpoint_)) {
    network_.unbind(control_endpoint_);
  }
}

void Engine::add_host(cluster::Host& host) {
  const HostId id = host.id();
  if (host_runtimes_.contains(id)) {
    throw std::logic_error{"Engine::add_host: host already added"};
  }
  auto runtime = std::make_unique<HostRuntime>(*this, host);
  // Configuration distribution: the new host learns every peer endpoint and
  // the current directory; peers learn the new host.
  for (auto& [other_id, other] : host_runtimes_) {
    other->set_host_endpoint(id, runtime->endpoint());
    runtime->set_host_endpoint(other_id, other->endpoint());
  }
  runtime->set_host_endpoint(id, runtime->endpoint());
  runtime->set_directory(directory_);
  if (probe_target_) {
    runtime->enable_probes(*probe_target_, config_.probe_interval);
  }
  host_runtimes_[id] = std::move(runtime);
}

void Engine::remove_host(HostId host) {
  auto it = host_runtimes_.find(host);
  if (it == host_runtimes_.end()) {
    throw std::logic_error{"Engine::remove_host: unknown host"};
  }
  if (it->second->slice_count() != 0) {
    throw std::logic_error{"Engine::remove_host: host still holds slices"};
  }
  host_runtimes_.erase(it);
}

bool Engine::has_host(HostId host) const {
  return host_runtimes_.contains(host);
}

std::vector<HostId> Engine::hosts() const {
  std::vector<HostId> out;
  out.reserve(host_runtimes_.size());
  for (const auto& [id, rt] : host_runtimes_) out.push_back(id);
  return out;
}

void Engine::deploy(
    const Topology& topology,
    const std::unordered_map<std::string, std::vector<HostId>>& placement) {
  if (deployed_) {
    throw std::logic_error{"Engine::deploy: already deployed"};
  }
  auto cfg = std::make_shared<StaticConfig>();
  for (std::uint32_t i = 0; i < topology.operators.size(); ++i) {
    const OperatorSpec& spec = topology.operators[i];
    if (spec.slices == 0 || !spec.factory) {
      throw std::invalid_argument{"deploy: operator needs slices and factory"};
    }
    if (cfg->op_by_name.contains(spec.name)) {
      throw std::invalid_argument{"deploy: duplicate operator name"};
    }
    StaticConfig::OperatorInfo info;
    info.id = OperatorId{i};
    info.name = spec.name;
    info.factory = spec.factory;
    for (std::uint32_t s = 0; s < spec.slices; ++s) {
      const SliceId slice{next_slice_++};
      info.slices.push_back(slice);
      cfg->slices[slice] = StaticConfig::SliceInfo{i, s};
    }
    cfg->op_by_name[spec.name] = i;
    cfg->operators.push_back(std::move(info));
  }
  for (const DagEdge& edge : topology.edges) {
    const auto from = cfg->op_by_name.find(edge.from);
    const auto to = cfg->op_by_name.find(edge.to);
    if (from == cfg->op_by_name.end() || to == cfg->op_by_name.end()) {
      throw std::invalid_argument{"deploy: edge references unknown operator"};
    }
    cfg->operators[to->second].upstream_ops.push_back(from->second);
  }

  // Resolve and validate the whole placement before mutating any engine
  // state: a failed deploy leaves the engine untouched and retryable.
  std::unordered_map<SliceId, SliceLocation> resolved;
  for (const auto& op : cfg->operators) {
    auto it = placement.find(op.name);
    if (it == placement.end() || it->second.size() != op.slices.size()) {
      throw std::invalid_argument{
          "deploy: placement must give one host per slice of every operator"};
    }
    for (std::size_t s = 0; s < op.slices.size(); ++s) {
      const HostId host = it->second[s];
      if (!host_runtimes_.contains(host)) {
        throw std::invalid_argument{"deploy: placement host not added"};
      }
      resolved[op.slices[s]] = SliceLocation{host, HostId{}};
    }
  }

  // Commit.
  static_ = std::move(cfg);
  directory_ = std::move(resolved);
  for (auto& [id, runtime] : host_runtimes_) {
    runtime->set_directory(directory_);
  }
  for (const auto& [slice, loc] : directory_) {
    host_runtimes_.at(loc.primary)->add_slice(slice,
                                              SliceRuntime::State::kActive);
  }
  deployed_ = true;
}

void Engine::inject(std::string_view op, std::size_t slice_index,
                    PayloadPtr payload) {
  const SliceId slice = slice_id(op, slice_index);
  const SliceLocation& loc = directory_.at(slice);
  // External pushes ride a sequence-numbered virtual channel, duplicated to
  // the shadow during migration exactly like slice-to-slice traffic.
  auto [it, inserted] = next_inject_seq_.try_emplace(slice, 1);
  WireEvent event{kExternalChannel, slice, it->second++, std::move(payload)};
  if (config_.checkpoints.enabled) {
    inject_log_[slice].push_back(event);
  }
  host_runtimes_.at(loc.primary)->deliver_external(event);
  if (loc.shadow.valid() && loc.shadow != loc.primary) {
    host_runtimes_.at(loc.shadow)->deliver_external(event);
  }
}

std::vector<SliceId> Engine::fail_host(HostId host) {
  if (!config_.checkpoints.enabled) {
    throw std::logic_error{"fail_host requires checkpoints to be enabled"};
  }
  auto it = host_runtimes_.find(host);
  if (it == host_runtimes_.end()) {
    throw std::invalid_argument{"fail_host: unknown host"};
  }
  std::vector<SliceId> lost;
  for (SliceId slice : it->second->slice_ids()) {
    it->second->slice(slice)->retire();  // pending CPU jobs die harmlessly
    lost.push_back(slice);
  }
  it->second->disable_probes();
  if (network_.bound(it->second->endpoint())) {
    network_.unbind(it->second->endpoint());  // in-flight messages drop
  }
  // Quarantine the runtime: CPU-job callbacks may still reference it.
  failed_runtimes_.push_back(std::move(it->second));
  host_runtimes_.erase(it);
  std::sort(lost.begin(), lost.end());
  return lost;
}

void Engine::recover_slice(SliceId slice, HostId dst,
                           std::function<void()> done) {
  auto cp = checkpoints_.find(slice);
  if (cp == checkpoints_.end()) {
    throw std::logic_error{"recover_slice: no checkpoint for slice"};
  }
  if (!host_runtimes_.contains(dst)) {
    throw std::invalid_argument{"recover_slice: unknown destination host"};
  }
  recoveries_[slice] = std::move(done);
  directory_[slice] = SliceLocation{dst, HostId{}};
  auto msg = std::make_shared<RestoreFromCheckpointMessage>();
  msg->slice = slice;
  msg->state = cp->second.state;
  msg->processed = cp->second.processed;
  msg->out_seqs = cp->second.out_seqs;
  msg->reply_to = control_endpoint_;
  const std::size_t bytes = msg->state->size();
  network_.send(control_endpoint_, host_runtimes_.at(dst)->endpoint(),
                std::move(msg), bytes);
}

SliceId Engine::slice_id(std::string_view op, std::size_t slice_index) const {
  if (!static_) {
    throw std::logic_error{"Engine: not deployed yet"};
  }
  const auto& info = static_->operators.at(static_->index_of(op));
  return info.slices.at(slice_index);
}

HostId Engine::slice_host(SliceId slice) const {
  auto it = directory_.find(slice);
  if (it == directory_.end()) {
    throw std::logic_error{"slice_host: unknown slice"};
  }
  return it->second.primary;
}

std::vector<SliceId> Engine::slices_on(HostId host) const {
  std::vector<SliceId> out;
  for (const auto& [slice, loc] : directory_) {
    if (loc.primary == host) out.push_back(slice);
  }
  std::sort(out.begin(), out.end());
  return out;
}

SliceRuntime* Engine::slice_runtime(SliceId slice) {
  auto it = directory_.find(slice);
  if (it == directory_.end()) return nullptr;
  auto host_it = host_runtimes_.find(it->second.primary);
  if (host_it == host_runtimes_.end()) return nullptr;
  return host_it->second->slice(slice);
}

void Engine::enable_probes(net::Endpoint target) {
  probe_target_ = target;
  for (auto& [id, runtime] : host_runtimes_) {
    runtime->enable_probes(target, config_.probe_interval);
  }
}

// ---- migration coordination --------------------------------------------------

void Engine::migrate(SliceId slice, HostId dst, MigrationCallback callback) {
  auto dir_it = directory_.find(slice);
  if (dir_it == directory_.end()) {
    throw std::invalid_argument{"migrate: unknown slice"};
  }
  if (!host_runtimes_.contains(dst)) {
    throw std::invalid_argument{"migrate: destination host not in engine"};
  }
  MigrationTask task;
  task.report.id = MigrationId{next_migration_++};
  task.report.slice = slice;
  task.report.src = dir_it->second.primary;
  task.report.dst = dst;
  task.report.requested = simulator_.now();
  task.callback = std::move(callback);
  if (task.report.src == dst) {
    // Degenerate migration: report immediately.
    task.report.frozen = task.report.activated = task.report.completed =
        simulator_.now();
    if (task.callback) task.callback(task.report);
    return;
  }
  migration_queue_.push_back(std::move(task));
  if (!current_migration_) start_next_migration();
}

void Engine::start_next_migration() {
  if (migration_queue_.empty()) return;
  current_migration_ = std::move(migration_queue_.front());
  migration_queue_.pop_front();
  MigrationTask& task = *current_migration_;
  // The slice may have moved since the request was queued.
  task.report.src = directory_.at(task.report.slice).primary;
  if (task.report.src == task.report.dst) {
    auto report = task.report;
    auto cb = std::move(task.callback);
    report.frozen = report.activated = report.completed = simulator_.now();
    current_migration_.reset();
    if (cb) cb(report);
    start_next_migration();
    return;
  }
  step_after_tick([this] {
    MigrationTask& t = *current_migration_;
    auto req = std::make_shared<CreateReplicaRequest>();
    req->migration = t.report.id;
    req->slice = t.report.slice;
    req->reply_to = control_endpoint_;
    send_control(host_runtimes_.at(t.report.dst)->endpoint(), std::move(req));
  });
}

void Engine::send_freeze() {
  MigrationTask& t = *current_migration_;
  auto req = std::make_shared<FreezeRequest>();
  req->migration = t.report.id;
  req->slice = t.report.slice;
  req->catchup = t.catchup;
  req->dst_host = t.report.dst;
  req->reply_to = control_endpoint_;
  send_control(host_runtimes_.at(t.report.src)->endpoint(), std::move(req));
}

void Engine::step_after_tick(std::function<void()> fn) {
  const auto tick = static_cast<std::uint64_t>(config_.control_tick.count());
  const auto delay =
      tick == 0 ? SimDuration::zero()
                : micros(static_cast<std::int64_t>(rng_.next_below(tick)));
  simulator_.schedule(delay, std::move(fn));
}

void Engine::send_control(net::Endpoint to, net::MessagePtr msg) {
  network_.send(control_endpoint_, to, std::move(msg), 96);
}

std::vector<SliceId> Engine::upstream_slices(SliceId slice) const {
  const auto& op = static_->op_of(slice);
  std::vector<SliceId> out;
  for (std::uint32_t up : op.upstream_ops) {
    const auto& up_op = static_->operators.at(up);
    out.insert(out.end(), up_op.slices.begin(), up_op.slices.end());
  }
  return out;
}

void Engine::on_control(const net::Delivery& delivery) {
  const net::Message* msg = delivery.message.get();

  // ---- passive-replication traffic (independent of migrations) ----
  if (const auto* checkpoint = dynamic_cast<const CheckpointMessage*>(msg)) {
    checkpoints_[checkpoint->slice] = StoredCheckpoint{
        checkpoint->state, checkpoint->processed, checkpoint->out_seqs};
    // Let upstream logs (and the external injection log) truncate.
    auto notice = std::make_shared<CheckpointNoticeMessage>();
    notice->slice = checkpoint->slice;
    notice->processed = checkpoint->processed;
    for (const auto& [upstream, watermark] : checkpoint->processed) {
      if (upstream == kExternalChannel) {
        auto log = inject_log_.find(checkpoint->slice);
        if (log != inject_log_.end()) {
          auto& events = log->second;
          while (!events.empty() && events.front().seq <= watermark) {
            events.pop_front();
          }
        }
      }
    }
    for (auto& [id, runtime] : host_runtimes_) {
      network_.send(control_endpoint_, runtime->endpoint(), notice, 96);
    }
    return;
  }
  if (const auto* ack = dynamic_cast<const ActivatedAck*>(msg);
      ack != nullptr && !ack->migration.valid()) {
    // Recovery activation (not a migration): converge the directory,
    // replay upstream logs and the external injection log.
    auto recovery = recoveries_.find(ack->slice);
    if (recovery == recoveries_.end()) return;
    const HostId dst = directory_.at(ack->slice).primary;
    for (auto& [id, runtime] : host_runtimes_) {
      auto update = std::make_shared<DirectoryUpdateMessage>();
      update->migration = MigrationId{};
      update->slice = ack->slice;
      update->host = dst;
      update->reply_to = net::Endpoint{};  // no ack needed
      network_.send(control_endpoint_, runtime->endpoint(), update, 96);
    }
    const auto& cp = checkpoints_.at(ack->slice);
    auto replay = std::make_shared<ReplayRequest>();
    replay->slice = ack->slice;
    replay->processed = cp.processed;
    for (auto& [id, runtime] : host_runtimes_) {
      network_.send(control_endpoint_, runtime->endpoint(), replay, 96);
    }
    // External injections: re-deliver the logged suffix directly.
    SeqNo external_watermark = 0;
    for (const auto& [upstream, watermark] : cp.processed) {
      if (upstream == kExternalChannel) external_watermark = watermark;
    }
    auto log = inject_log_.find(ack->slice);
    if (log != inject_log_.end()) {
      auto dst_runtime = host_runtimes_.find(dst);
      for (const WireEvent& event : log->second) {
        if (event.seq > external_watermark &&
            dst_runtime != host_runtimes_.end()) {
          dst_runtime->second->deliver_external(event);
        }
      }
    }
    auto done = std::move(recovery->second);
    recoveries_.erase(recovery);
    if (done) done();
    return;
  }

  if (!current_migration_) {
    ESH_WARN << "Engine: control message with no migration in flight";
    return;
  }
  MigrationTask& task = *current_migration_;

  if (const auto* ack = dynamic_cast<const CreateReplicaAck*>(msg)) {
    if (ack->migration != task.report.id) return;
    // Duplication of the external injection channel starts now: record the
    // shadow (Engine::inject consults it) and the catch-up point.
    directory_[task.report.slice].shadow = task.report.dst;
    task.catchup.clear();
    const auto inject_it = next_inject_seq_.find(task.report.slice);
    task.catchup.emplace_back(
        kExternalChannel,
        inject_it == next_inject_seq_.end() ? SeqNo{1} : inject_it->second);

    const auto upstreams = upstream_slices(task.report.slice);
    task.awaited_acks = upstreams.size();
    if (upstreams.empty()) {
      // No DAG channels (source operator): freeze directly.
      step_after_tick([this] { send_freeze(); });
      return;
    }
    // One request per host holding at least one upstream slice.
    std::set<HostId> hosts;
    for (SliceId up : upstreams) hosts.insert(directory_.at(up).primary);
    step_after_tick([this, hosts] {
      MigrationTask& t = *current_migration_;
      for (HostId host : hosts) {
        auto req = std::make_shared<StartDuplicationRequest>();
        req->migration = t.report.id;
        req->slice = t.report.slice;
        req->shadow_host = t.report.dst;
        req->reply_to = control_endpoint_;
        send_control(host_runtimes_.at(host)->endpoint(), std::move(req));
      }
    });
    return;
  }

  if (const auto* ack = dynamic_cast<const StartDuplicationAck*>(msg)) {
    if (ack->migration != task.report.id) return;
    task.catchup.emplace_back(ack->upstream_slice, ack->next_seq);
    if (--task.awaited_acks > 0) return;
    step_after_tick([this] { send_freeze(); });
    return;
  }

  if (const auto* ack = dynamic_cast<const ActivatedAck*>(msg)) {
    if (ack->migration != task.report.id) return;
    task.report.frozen = ack->frozen_at;
    task.report.activated = ack->activated_at;
    task.report.state_bytes = ack->state_bytes;
    directory_[task.report.slice] =
        SliceLocation{task.report.dst, HostId{}};
    task.awaited_acks = host_runtimes_.size();
    step_after_tick([this] {
      MigrationTask& t = *current_migration_;
      for (auto& [id, runtime] : host_runtimes_) {
        auto update = std::make_shared<DirectoryUpdateMessage>();
        update->migration = t.report.id;
        update->slice = t.report.slice;
        update->host = t.report.dst;
        update->reply_to = control_endpoint_;
        send_control(runtime->endpoint(), std::move(update));
      }
    });
    return;
  }

  if (const auto* ack = dynamic_cast<const DirectoryUpdateAck*>(msg)) {
    if (ack->migration != task.report.id) return;
    if (--task.awaited_acks > 0) return;
    step_after_tick([this] {
      MigrationTask& t = *current_migration_;
      auto req = std::make_shared<TeardownRequest>();
      req->migration = t.report.id;
      req->slice = t.report.slice;
      req->reply_to = control_endpoint_;
      send_control(host_runtimes_.at(t.report.src)->endpoint(), std::move(req));
    });
    return;
  }

  if (const auto* ack = dynamic_cast<const TeardownAck*>(msg)) {
    if (ack->migration != task.report.id) return;
    task.report.completed = simulator_.now();
    ++migrations_completed_;
    auto report = task.report;
    auto cb = std::move(task.callback);
    current_migration_.reset();
    if (cb) cb(report);
    if (!current_migration_) start_next_migration();
    return;
  }

  ESH_WARN << "Engine: unrecognized control message";
}

}  // namespace esh::engine
