#include "engine/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/det.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace esh::engine {

const char* to_string(MigrationOutcome outcome) {
  switch (outcome) {
    case MigrationOutcome::kCompleted: return "completed";
    case MigrationOutcome::kRejected: return "rejected";
    case MigrationOutcome::kAbortedSrcFailed: return "aborted-src-failed";
    case MigrationOutcome::kAbortedDstFailed: return "aborted-dst-failed";
  }
  return "unknown";
}

const char* to_string(MigrationStep step) {
  switch (step) {
    case MigrationStep::kCreateReplica: return "create-replica";
    case MigrationStep::kDuplication: return "duplication";
    case MigrationStep::kTransfer: return "transfer";
    case MigrationStep::kDirectoryUpdate: return "directory-update";
    case MigrationStep::kTeardown: return "teardown";
    case MigrationStep::kAborting: return "aborting";
  }
  return "unknown";
}

bool migration_transition_legal(MigrationStep from, MigrationStep to) {
  using Step = MigrationStep;
  switch (from) {
    case Step::kCreateReplica:
      // A source operator with no live upstream channels skips straight to
      // the freeze; otherwise duplication starts. Either peer may die.
      return to == Step::kDuplication || to == Step::kTransfer ||
             to == Step::kAborting;
    case Step::kDuplication:
      return to == Step::kTransfer || to == Step::kAborting;
    case Step::kTransfer:
      return to == Step::kDirectoryUpdate || to == Step::kAborting;
    case Step::kAborting:
      // An ActivatedAck racing the abort handshake means the state transfer
      // won: the move completed and directory convergence proceeds.
      return to == Step::kDirectoryUpdate;
    case Step::kDirectoryUpdate:
      return to == Step::kTeardown;
    case Step::kTeardown:
      return false;  // terminal; resolved by finish_migration
  }
  return false;
}

void assert_migration_transition([[maybe_unused]] MigrationId id,
                                 [[maybe_unused]] SliceId slice,
                                 [[maybe_unused]] MigrationStep from,
                                 [[maybe_unused]] MigrationStep to) {
  ESH_STATE_MACHINE_ASSERT(
      "engine", "migration-step-legal", migration_transition_legal(from, to),
      ::esh::contracts::Detail{}
          .slice(slice)
          .transition(to_string(from), to_string(to))
          .note("migration " + std::to_string(id.value())));
}

Engine::Engine(sim::Simulator& simulator, net::Network& network,
               HostId manager_host, EngineConfig config, std::uint64_t seed)
    : simulator_(simulator),
      network_(network),
      config_(config),
      worker_pool_(std::max(config.worker_threads, config.match_threads) > 1
                       ? std::make_unique<ThreadPool>(std::max(
                             config.worker_threads, config.match_threads))
                       : nullptr),
      rng_(seed),
      manager_host_(manager_host) {
  control_endpoint_ = network_.new_endpoint();
  if (config_.reliable_control) {
    control_channel_ = std::make_unique<net::ReliableChannel>(
        simulator_, network_, control_endpoint_, manager_host_,
        [this](const net::Delivery& d) { on_control(d); }, config_.reliable);
    control_channel_->on_give_up(
        [this](net::Endpoint peer) { notify_control_give_up(peer); });
  } else {
    network_.bind(control_endpoint_, manager_host_,
                  [this](const net::Delivery& d) { on_control(d); });
  }
}

Engine::~Engine() {
  host_runtimes_.clear();
  control_channel_.reset();  // unbinds the control endpoint when reliable
  if (network_.bound(control_endpoint_)) {
    network_.unbind(control_endpoint_);
  }
}

void Engine::add_host(cluster::Host& host) {
  const HostId id = host.id();
  if (host_runtimes_.contains(id)) {
    throw std::logic_error{"Engine::add_host: host already added"};
  }
  auto runtime = std::make_unique<HostRuntime>(*this, host);
  // Configuration distribution: the new host learns every peer endpoint and
  // the current directory; peers learn the new host.
  // lint:allow(unordered-iteration): local endpoint-table writes, order-free
  for (auto& [other_id, other] : host_runtimes_) {
    other->set_host_endpoint(id, runtime->endpoint());
    runtime->set_host_endpoint(other_id, other->endpoint());
  }
  runtime->set_host_endpoint(id, runtime->endpoint());
  runtime->set_directory(directory_);
  if (probe_target_) {
    runtime->enable_probes(*probe_target_, config_.probe_interval);
  }
  control_peers_[runtime->endpoint()] = id;
  host_runtimes_[id] = std::move(runtime);
}

void Engine::remove_host(HostId host) {
  auto it = host_runtimes_.find(host);
  if (it == host_runtimes_.end()) {
    throw std::logic_error{"Engine::remove_host: unknown host"};
  }
  if (it->second->slice_count() != 0) {
    throw std::logic_error{"Engine::remove_host: host still holds slices"};
  }
  host_runtimes_.erase(it);
}

bool Engine::has_host(HostId host) const {
  return host_runtimes_.contains(host);
}

std::vector<HostId> Engine::hosts() const {
  // Sorted: callers (placement, recovery orchestration) branch on this
  // order, so it must not depend on hash-table layout.
  return sorted_keys(host_runtimes_);
}

void Engine::deploy(
    const Topology& topology,
    const std::unordered_map<std::string, std::vector<HostId>>& placement) {
  if (deployed_) {
    throw std::logic_error{"Engine::deploy: already deployed"};
  }
  auto cfg = std::make_shared<StaticConfig>();
  for (std::uint32_t i = 0; i < topology.operators.size(); ++i) {
    const OperatorSpec& spec = topology.operators[i];
    if (spec.slices == 0 || !spec.factory) {
      throw std::invalid_argument{"deploy: operator needs slices and factory"};
    }
    if (cfg->op_by_name.contains(spec.name)) {
      throw std::invalid_argument{"deploy: duplicate operator name"};
    }
    StaticConfig::OperatorInfo info;
    info.id = OperatorId{i};
    info.name = spec.name;
    info.factory = spec.factory;
    for (std::uint32_t s = 0; s < spec.slices; ++s) {
      const SliceId slice{next_slice_++};
      info.slices.push_back(slice);
      cfg->slice_infos[slice] = StaticConfig::SliceInfo{i, s};
    }
    cfg->op_by_name[spec.name] = i;
    cfg->operators.push_back(std::move(info));
  }
  for (const DagEdge& edge : topology.edges) {
    const auto from = cfg->op_by_name.find(edge.from);
    const auto to = cfg->op_by_name.find(edge.to);
    if (from == cfg->op_by_name.end() || to == cfg->op_by_name.end()) {
      throw std::invalid_argument{"deploy: edge references unknown operator"};
    }
    cfg->operators[to->second].upstream_ops.push_back(from->second);
  }

  // Resolve and validate the whole placement before mutating any engine
  // state: a failed deploy leaves the engine untouched and retryable.
  std::unordered_map<SliceId, SliceLocation> resolved;
  for (const auto& op : cfg->operators) {
    auto it = placement.find(op.name);
    if (it == placement.end() || it->second.size() != op.slices.size()) {
      throw std::invalid_argument{
          "deploy: placement must give one host per slice of every operator"};
    }
    for (std::size_t s = 0; s < op.slices.size(); ++s) {
      const HostId host = it->second[s];
      if (!host_runtimes_.contains(host)) {
        throw std::invalid_argument{"deploy: placement host not added"};
      }
      resolved[op.slices[s]] = SliceLocation{host, HostId{}};
    }
  }

  // Commit.
  static_ = std::move(cfg);
  directory_ = std::move(resolved);
  // lint:allow(unordered-iteration): local directory writes, order-free
  for (auto& [id, runtime] : host_runtimes_) {
    runtime->set_directory(directory_);
  }
  // lint:allow(unordered-iteration): arming order only picks the same-tick
  // tie-break among per-slice timers; the map's order is deterministic for
  // a fixed binary and is kept as the established baseline schedule.
  for (const auto& [slice, loc] : directory_) {
    host_runtimes_.at(loc.primary)->add_slice(slice,
                                              SliceRuntime::State::kActive);
  }
  deployed_ = true;
}

void Engine::inject(std::string_view op, std::size_t slice_index,
                    PayloadPtr payload) {
  const SliceId slice = slice_id(op, slice_index);
  const SliceLocation& loc = directory_.at(slice);
  // External pushes ride a sequence-numbered virtual channel, duplicated to
  // the shadow during migration exactly like slice-to-slice traffic.
  auto [it, inserted] = next_inject_seq_.try_emplace(slice, 1);
  WireEvent event{kExternalChannel, slice, it->second++, std::move(payload)};
  if (config_.checkpoints.enabled) {
    inject_log_[slice].push_back(event);
  }
  host_runtimes_.at(loc.primary)->deliver_external(event);
  if (loc.shadow.valid() && loc.shadow != loc.primary) {
    host_runtimes_.at(loc.shadow)->deliver_external(event);
  }
}

std::vector<SliceId> Engine::fail_host(HostId host) {
  if (!config_.checkpoints.enabled) {
    throw std::logic_error{"fail_host requires checkpoints to be enabled"};
  }
  auto it = host_runtimes_.find(host);
  if (it == host_runtimes_.end()) {
    throw std::invalid_argument{"fail_host: unknown host"};
  }
  std::vector<SliceId> lost;
  for (SliceId slice : it->second->slice_ids()) {
    it->second->slice(slice)->retire();  // pending CPU jobs die harmlessly
    // Only slices the directory still places here are lost: a mid-migration
    // replica (primary elsewhere) dies without losing anything.
    const auto loc = directory_.find(slice);
    if (loc != directory_.end() && loc->second.primary == host) {
      lost.push_back(slice);
    }
  }
  it->second->disable_probes();
  // Tear down the dead host's reliable channel first: otherwise its
  // retransmission timers keep firing post-quarantine and eventually report
  // LIVE peers unreachable from the corpse's point of view.
  it->second->shutdown_control_channel();
  if (network_.bound(it->second->endpoint())) {
    network_.unbind(it->second->endpoint());  // in-flight messages drop
  }
  // Drop the coordinator's own unacked traffic toward the corpse: its
  // endpoint is gone, so every retry is wasted simulated bandwidth (and a
  // redundant give-up escalation later).
  if (control_channel_) control_channel_->forget_peer(it->second->endpoint());
  // Quarantine the runtime: CPU-job callbacks may still reference it.
  failed_runtimes_.push_back(std::move(it->second));
  host_runtimes_.erase(it);
  std::sort(lost.begin(), lost.end());
  // Record regenerated-stream bases for every lost multi-input slice NOW,
  // before any restore message is built: a consumer co-recovering in the
  // same sweep must see the clamp in its restore watermarks, and the order
  // in which the manager issues recover_slice calls is placement-driven.
  for (const SliceId slice : lost) register_recovery_rebases(slice);
  // Unwedge the migration protocol: abort or advance the in-flight
  // migration if the dead host participated in it.
  handle_host_failure(host);
  return lost;
}

bool Engine::slice_lost(SliceId slice) const {
  const auto it = directory_.find(slice);
  if (it == directory_.end()) return false;
  const auto host_it = host_runtimes_.find(it->second.primary);
  return host_it == host_runtimes_.end() ||
         !host_it->second->has_slice(slice);
}

void Engine::recover_slice(SliceId slice, HostId dst,
                           std::function<void()> done) {
  if (!directory_.contains(slice)) {
    throw std::invalid_argument{"recover_slice: unknown slice"};
  }
  if (!host_runtimes_.contains(dst)) {
    throw std::invalid_argument{"recover_slice: unknown destination host"};
  }
  recoveries_[slice] = std::move(done);
  directory_[slice] = SliceLocation{dst, HostId{}};
  auto msg = std::make_shared<RestoreFromCheckpointMessage>();
  msg->slice = slice;
  msg->reply_to = control_endpoint_;
  std::size_t bytes = 96;
  if (auto cp = checkpoints_.find(slice); cp != checkpoints_.end()) {
    msg->state = cp->second.state;
    msg->processed = cp->second.processed;
    msg->out_seqs = cp->second.out_seqs;
    msg->log = cp->second.log;
    bytes = msg->state->size() + 64 * msg->log.size();
  }
  // Co-recovery with a regenerated upstream: restored channel watermarks
  // still counting the old stream rewind to the regenerated base, so the
  // replayed suffix is accepted instead of deduplicated (see
  // recovery_rebases_).
  msg->processed = clamp_to_rebases(slice, std::move(msg->processed));
  // No checkpoint: bootstrap restore with null state and zero watermarks.
  // The retained logs are complete precisely because no checkpoint ever
  // truncated them, so the full replay rebuilds the state from scratch.
  send_control(host_runtimes_.at(dst)->endpoint(), std::move(msg), bytes);
}

SliceId Engine::slice_id(std::string_view op, std::size_t slice_index) const {
  if (!static_) {
    throw std::logic_error{"Engine: not deployed yet"};
  }
  const auto& info = static_->operators.at(static_->index_of(op));
  return info.slices.at(slice_index);
}

HostId Engine::slice_host(SliceId slice) const {
  auto it = directory_.find(slice);
  if (it == directory_.end()) {
    throw std::logic_error{"slice_host: unknown slice"};
  }
  return it->second.primary;
}

std::vector<SliceId> Engine::slices_on(HostId host) const {
  std::vector<SliceId> out;
  // lint:allow(unordered-iteration): result is sorted below
  for (const auto& [slice, loc] : directory_) {
    if (loc.primary == host) out.push_back(slice);
  }
  std::sort(out.begin(), out.end());
  return out;
}

SliceRuntime* Engine::slice_runtime(SliceId slice) {
  auto it = directory_.find(slice);
  if (it == directory_.end()) return nullptr;
  auto host_it = host_runtimes_.find(it->second.primary);
  if (host_it == host_runtimes_.end()) return nullptr;
  return host_it->second->slice(slice);
}

void Engine::enable_probes(net::Endpoint target) {
  probe_target_ = target;
  // Sorted: probe-timer scheduling order decides same-tick probe ties.
  for (const HostId id : sorted_keys(host_runtimes_)) {
    host_runtimes_.at(id)->enable_probes(target, config_.probe_interval);
  }
}

// ---- migration coordination --------------------------------------------------

void Engine::migrate(SliceId slice, HostId dst, MigrationCallback callback) {
  MigrationTask task;
  task.report.id = MigrationId{next_migration_++};
  task.report.slice = slice;
  task.report.dst = dst;
  task.report.requested = simulator_.now();
  task.callback = std::move(callback);
  const auto dir_it = directory_.find(slice);
  if (dir_it == directory_.end() || !host_runtimes_.contains(dst)) {
    // Invalid request: reject through the callback so callers learn the
    // outcome the same way they learn any other.
    task.report.outcome = MigrationOutcome::kRejected;
    task.report.completed = simulator_.now();
    if (task.callback) task.callback(task.report);
    return;
  }
  task.report.src = dir_it->second.primary;
  if (task.report.src == dst) {
    // Degenerate migration: report immediately.
    task.report.frozen = task.report.activated = task.report.completed =
        simulator_.now();
    if (task.callback) task.callback(task.report);
    return;
  }
  migration_queue_.push_back(std::move(task));
  start_next_migration();
}

void Engine::start_next_migration() {
  while (!current_migration_ && !migration_queue_.empty()) {
    MigrationTask task = std::move(migration_queue_.front());
    migration_queue_.pop_front();
    // Cluster state may have changed while the request was queued: the
    // slice may have moved, been lost to a crash, or the destination host
    // may have died. Reject stale moves instead of wedging on them.
    const auto dir_it = directory_.find(task.report.slice);
    const HostId src =
        dir_it == directory_.end() ? HostId{} : dir_it->second.primary;
    const auto src_it = host_runtimes_.find(src);
    const bool src_ok = src_it != host_runtimes_.end() &&
                        src_it->second->has_slice(task.report.slice);
    if (!src_ok || !host_runtimes_.contains(task.report.dst)) {
      task.report.outcome = MigrationOutcome::kRejected;
      task.report.completed = simulator_.now();
      if (task.callback) task.callback(task.report);
      continue;
    }
    task.report.src = src;
    if (src == task.report.dst) {
      task.report.frozen = task.report.activated = task.report.completed =
          simulator_.now();
      if (task.callback) task.callback(task.report);
      continue;
    }
    current_migration_ = std::move(task);
    migration_step([this] {
      MigrationTask& t = *current_migration_;
      auto req = std::make_shared<CreateReplicaRequest>();
      req->migration = t.report.id;
      req->slice = t.report.slice;
      req->reply_to = control_endpoint_;
      send_control(host_runtimes_.at(t.report.dst)->endpoint(),
                   std::move(req));
    });
  }
}

void Engine::finish_migration(MigrationOutcome outcome) {
  MigrationTask task = std::move(*current_migration_);
  current_migration_.reset();
  task.report.outcome = outcome;
  task.report.completed = simulator_.now();
  // Report timestamps must be causally ordered. frozen/activated stay zero
  // on abort paths where the ActivatedAck never arrived, so the freeze-
  // before-activate ordering is only checkable when both were recorded.
  ESH_INVARIANT("engine", "migration-report-ordered",
                task.report.completed >= task.report.requested &&
                    (task.report.frozen == SimTime{} ||
                     task.report.activated == SimTime{} ||
                     (task.report.frozen >= task.report.requested &&
                      task.report.activated >= task.report.frozen &&
                      task.report.completed >= task.report.activated)),
                ::esh::contracts::Detail{}
                    .slice(task.report.slice)
                    .expected("requested <= frozen <= activated <= completed")
                    .actual(std::to_string(task.report.requested.count()) +
                            "/" + std::to_string(task.report.frozen.count()) +
                            "/" +
                            std::to_string(task.report.activated.count()) +
                            "/" +
                            std::to_string(task.report.completed.count())));
  if (outcome == MigrationOutcome::kCompleted) ++migrations_completed_;
  if (task.callback) task.callback(task.report);
  start_next_migration();
}

void Engine::broadcast_location(SliceId slice, HostId host) {
  // Sorted: send order serializes on the manager NIC and decides per-host
  // delivery times.
  for (const HostId id : sorted_keys(host_runtimes_)) {
    auto update = std::make_shared<DirectoryUpdateMessage>();
    update->migration = MigrationId{};
    update->slice = slice;
    update->host = host;
    update->reply_to = net::Endpoint{};  // no ack needed
    send_control(host_runtimes_.at(id)->endpoint(), std::move(update));
  }
}

void Engine::after_directory_acks() {
  MigrationTask& t = *current_migration_;
  if (!host_runtimes_.contains(t.report.src)) {
    // The source died after activation: nothing left to tear down, the
    // slice is safe on the destination.
    finish_migration(MigrationOutcome::kCompleted);
    return;
  }
  t.set_step(MigrationTask::Step::kTeardown);
  migration_step([this] {
    MigrationTask& t = *current_migration_;
    auto req = std::make_shared<TeardownRequest>();
    req->migration = t.report.id;
    req->slice = t.report.slice;
    req->reply_to = control_endpoint_;
    send_control(host_runtimes_.at(t.report.src)->endpoint(), std::move(req));
  });
}

void Engine::handle_host_failure(HostId host) {
  if (!current_migration_) return;
  MigrationTask& t = *current_migration_;
  using Step = MigrationTask::Step;
  const SliceId slice = t.report.slice;

  if (host == t.report.dst) {
    switch (t.step) {
      case Step::kCreateReplica:
        // No duplication started yet; the replica died with the host.
        finish_migration(MigrationOutcome::kAbortedDstFailed);
        return;
      case Step::kDuplication:
        // Upstreams may already duplicate to the dead host: stop them.
        directory_[slice].shadow = HostId{};
        broadcast_location(slice, t.report.src);
        finish_migration(MigrationOutcome::kAbortedDstFailed);
        return;
      case Step::kTransfer: {
        // The freeze may or may not have reached the source. Ask it to
        // resume the slice; if the state already shipped (to a dead host),
        // the source reports the slice unusable and it goes to recovery.
        t.set_step(Step::kAborting);
        t.abort_peer = t.report.src;
        t.abort_outcome = MigrationOutcome::kAbortedDstFailed;
        auto req = std::make_shared<AbortMigrationRequest>();
        req->migration = t.report.id;
        req->slice = slice;
        req->reply_to = control_endpoint_;
        send_control(host_runtimes_.at(t.report.src)->endpoint(),
                     std::move(req));
        return;
      }
      case Step::kDirectoryUpdate:
        // Already activated on dst: the move completed, then the host
        // died. The lost slice is recovery's problem; converge survivors.
        t.pending_update_hosts.erase(host);
        if (t.pending_update_hosts.empty()) after_directory_acks();
        return;
      case Step::kTeardown:
        return;  // teardown targets the source; unaffected
      case Step::kAborting:
        if (host == t.abort_peer) finish_migration(t.abort_outcome);
        return;
    }
    return;
  }

  if (host == t.report.src) {
    switch (t.step) {
      case Step::kCreateReplica:
      case Step::kDuplication:
      case Step::kTransfer: {
        // The slice was lost with the source. The replica on dst must be
        // torn down — unless the state transfer raced ahead and it already
        // activated, in which case the migration completed. Ask dst.
        directory_[slice].shadow = HostId{};
        t.set_step(Step::kAborting);
        t.abort_peer = t.report.dst;
        t.abort_outcome = MigrationOutcome::kAbortedSrcFailed;
        auto req = std::make_shared<AbortReplicaRequest>();
        req->migration = t.report.id;
        req->slice = slice;
        req->reply_to = control_endpoint_;
        send_control(host_runtimes_.at(t.report.dst)->endpoint(),
                     std::move(req));
        return;
      }
      case Step::kDirectoryUpdate:
        t.pending_update_hosts.erase(host);
        if (t.pending_update_hosts.empty()) after_directory_acks();
        return;
      case Step::kTeardown:
        // The dead source was the last protocol participant.
        finish_migration(MigrationOutcome::kCompleted);
        return;
      case Step::kAborting:
        if (host == t.abort_peer) finish_migration(t.abort_outcome);
        return;
    }
    return;
  }

  // A third host died: strike it from any outstanding ack set so the
  // protocol does not wait for a host that will never answer.
  if (t.step == Step::kDuplication) {
    for (auto it = t.pending_dup_slices.begin();
         it != t.pending_dup_slices.end();) {
      if (directory_.at(*it).primary == host) {
        // The upstream died with its host; its channel gets no catch-up
        // entry. Once recovered, its replayed suffix reaches the replica
        // through shadow duplication like any live traffic.
        it = t.pending_dup_slices.erase(it);
      } else {
        ++it;
      }
    }
    if (t.pending_dup_slices.empty()) {
      t.set_step(Step::kTransfer);
      migration_step([this] { send_freeze(); });
    }
  } else if (t.step == Step::kDirectoryUpdate) {
    t.pending_update_hosts.erase(host);
    if (t.pending_update_hosts.empty()) after_directory_acks();
  }
}

void Engine::send_freeze() {
  MigrationTask& t = *current_migration_;
  auto req = std::make_shared<FreezeRequest>();
  req->migration = t.report.id;
  req->slice = t.report.slice;
  req->catchup = t.catchup;
  req->dst_host = t.report.dst;
  req->reply_to = control_endpoint_;
  send_control(host_runtimes_.at(t.report.src)->endpoint(), std::move(req));
}

void Engine::step_after_tick(std::function<void()> fn) {
  const auto tick = static_cast<std::uint64_t>(config_.control_tick.count());
  const auto delay =
      tick == 0 ? SimDuration::zero()
                : micros(static_cast<std::int64_t>(rng_.next_below(tick)));
  simulator_.schedule(delay, std::move(fn));
}

void Engine::migration_step(std::function<void()> fn) {
  // A migration can be aborted (and a successor started) while a scheduled
  // step is in flight: the guard keeps a stale step from firing into the
  // wrong migration, and from racing an abort handshake (e.g. sending the
  // freeze after the source was already told to resume the slice).
  const MigrationId id = current_migration_->report.id;
  step_after_tick([this, id, fn = std::move(fn)] {
    if (current_migration_ && current_migration_->report.id == id &&
        current_migration_->step != MigrationTask::Step::kAborting) {
      fn();
    }
  });
}

void Engine::send_control(net::Endpoint to, net::MessagePtr msg,
                          std::size_t bytes) {
  if (control_channel_) {
    control_channel_->send(to, std::move(msg), bytes);
  } else {
    network_.send(control_endpoint_, to, std::move(msg), bytes);
  }
}

void Engine::notify_control_give_up(net::Endpoint peer) {
  HostId host{};
  if (peer == control_endpoint_) {
    host = manager_host_;
  } else if (auto it = control_peers_.find(peer); it != control_peers_.end()) {
    host = it->second;
  }
  if (host.valid() && control_unreachable_) {
    control_unreachable_(host);
  }
}

net::ReliableStats Engine::reliable_stats() const {
  net::ReliableStats total;
  auto add = [&total](const net::ReliableStats& s) {
    total.data_sent += s.data_sent;
    total.retransmits += s.retransmits;
    total.acks_sent += s.acks_sent;
    total.delivered += s.delivered;
    total.duplicates_dropped += s.duplicates_dropped;
    total.corrupt_dropped += s.corrupt_dropped;
    total.give_ups += s.give_ups;
  };
  if (control_channel_) add(control_channel_->stats());
  // lint:allow(unordered-iteration): commutative sum, order-free
  for (const auto& [id, runtime] : host_runtimes_) {
    if (runtime->control_channel()) add(runtime->control_channel()->stats());
  }
  return total;
}

std::vector<SliceId> Engine::upstream_slices(SliceId slice) const {
  const auto& op = static_->op_of(slice);
  std::vector<SliceId> out;
  for (std::uint32_t up : op.upstream_ops) {
    const auto& up_op = static_->operators.at(up);
    out.insert(out.end(), up_op.slices.begin(), up_op.slices.end());
  }
  return out;
}

std::vector<SliceId> Engine::downstream_slices(SliceId slice) const {
  const std::uint32_t op_index = static_->info_of(slice).op_index;
  std::vector<SliceId> out;
  for (const auto& op : static_->operators) {
    if (std::find(op.upstream_ops.begin(), op.upstream_ops.end(), op_index) ==
        op.upstream_ops.end()) {
      continue;
    }
    out.insert(out.end(), op.slices.begin(), op.slices.end());
  }
  return out;
}

void Engine::register_recovery_rebases(SliceId slice) {
  // Single-input slices replay their one channel in the original order, so
  // the regenerated output keeps the original numbering and downstream
  // dedup stays valid; only multi-input interleavings renumber.
  const std::size_t input_channels =
      upstream_slices(slice).size() +
      (next_inject_seq_.contains(slice) ? 1 : 0);
  if (input_channels <= 1) return;
  std::vector<std::pair<SliceId, SeqNo>> out_bases;
  if (auto cp = checkpoints_.find(slice); cp != checkpoints_.end()) {
    out_bases = cp->second.out_seqs;
  }
  // A consumer absent from out_bases never received anything pre-cut and
  // rewinds to 1, mirroring handle_directory_update's default.
  auto& rebases = recovery_rebases_[slice];
  rebases.clear();
  for (const SliceId down : downstream_slices(slice)) {
    SeqNo base = 1;
    for (const auto& [target, next] : out_bases) {
      if (target == down) base = next;
    }
    rebases[down] = base;
  }
}

std::vector<std::pair<SliceId, SeqNo>> Engine::clamp_to_rebases(
    SliceId slice, std::vector<std::pair<SliceId, SeqNo>> processed) const {
  for (auto& [upstream, watermark] : processed) {
    const auto rebase = recovery_rebases_.find(upstream);
    if (rebase == recovery_rebases_.end()) continue;
    const auto entry = rebase->second.find(slice);
    if (entry == rebase->second.end()) continue;
    // The upstream regenerated its stream from `base`; a restored watermark
    // at or past it counts the old numbering and must rewind so the
    // regenerated suffix is replayed and accepted. Content the old
    // watermark did cover is then reprocessed — absorbed downstream, which
    // is at-least-once above the EP boundary.
    if (watermark >= entry->second) watermark = entry->second - 1;
  }
  return processed;
}

void Engine::on_control(const net::Delivery& delivery) {
  const net::Message* msg = delivery.message.get();

  // ---- passive-replication traffic (independent of migrations) ----
  if (const auto* checkpoint = dynamic_cast<const CheckpointMessage*>(msg)) {
    checkpoints_[checkpoint->slice] =
        StoredCheckpoint{checkpoint->state, checkpoint->processed,
                         checkpoint->out_seqs, checkpoint->log};
    // A checkpoint whose watermark reaches a recovered upstream's
    // regenerated base proves this consumer advanced in the new numbering;
    // the rebase entry is spent. (Narrow known race: a pre-crash checkpoint
    // still in flight from a now-dead consumer can spend the entry with an
    // old-numbering watermark — it is also the restore point recovery will
    // resume from, so the window is a single checkpoint interval.)
    for (const auto& [upstream, watermark] : checkpoint->processed) {
      const auto rebase = recovery_rebases_.find(upstream);
      if (rebase == recovery_rebases_.end()) continue;
      const auto entry = rebase->second.find(checkpoint->slice);
      if (entry != rebase->second.end() && watermark >= entry->second) {
        rebase->second.erase(entry);
        if (rebase->second.empty()) recovery_rebases_.erase(rebase);
      }
    }
    // Let upstream logs (and the external injection log) truncate.
    auto notice = std::make_shared<CheckpointNoticeMessage>();
    notice->slice = checkpoint->slice;
    notice->processed = checkpoint->processed;
    for (const auto& [upstream, watermark] : checkpoint->processed) {
      if (upstream == kExternalChannel) {
        auto log = inject_log_.find(checkpoint->slice);
        if (log != inject_log_.end()) {
          auto& events = log->second;
          while (!events.empty() && events.front().seq <= watermark) {
            events.pop_front();
          }
        }
      }
    }
    // Sorted: broadcast order serializes on the manager NIC.
    for (const HostId id : sorted_keys(host_runtimes_)) {
      send_control(host_runtimes_.at(id)->endpoint(), notice);
    }
    return;
  }
  if (const auto* ack = dynamic_cast<const ActivatedAck*>(msg);
      ack != nullptr && !ack->migration.valid()) {
    // Recovery activation (not a migration): converge the directory,
    // replay upstream logs and the external injection log.
    auto recovery = recoveries_.find(ack->slice);
    if (recovery == recoveries_.end()) return;
    const HostId dst = directory_.at(ack->slice).primary;
    // A slice without a checkpoint bootstraps: zero watermarks ask the
    // (untruncated) logs for a full replay, and empty output bases make
    // every downstream rewind to sequence 1.
    std::vector<std::pair<SliceId, SeqNo>> processed;
    std::vector<std::pair<SliceId, SeqNo>> out_bases;
    if (auto cp = checkpoints_.find(ack->slice); cp != checkpoints_.end()) {
      processed = cp->second.processed;
      out_bases = cp->second.out_seqs;
    }
    // Co-recovery: channel watermarks counting an already-regenerated
    // upstream stream rewind to its new base (matches what the restore
    // message carried, so the activated channels accept the replay).
    processed = clamp_to_rebases(ack->slice, std::move(processed));
    // With a single input channel the replay re-creates the original event
    // order exactly, so the regenerated output matches the original
    // sequence numbering and downstream dedup stays valid. Only multi-input
    // slices can interleave replayed channels differently and need their
    // downstream channels rewound to the restored bases.
    const std::size_t input_channels =
        upstream_slices(ack->slice).size() +
        (next_inject_seq_.contains(ack->slice) ? 1 : 0);
    // This recovery renumbers a multi-input slice's output (fresh
    // interleaving from the checkpoint cut). Refresh the per-consumer
    // regenerated bases (first recorded at fail_host time) so consumers
    // that recover later rewind their restored watermarks to them.
    register_recovery_rebases(ack->slice);
    // Sorted: broadcast order serializes on the manager NIC and decides
    // when each survivor rewinds / starts replaying.
    for (const HostId id : sorted_keys(host_runtimes_)) {
      auto update = std::make_shared<DirectoryUpdateMessage>();
      update->migration = MigrationId{};
      update->slice = ack->slice;
      update->host = dst;
      update->reply_to = net::Endpoint{};  // no ack needed
      update->reset_channels = input_channels > 1;
      update->out_bases = out_bases;
      send_control(host_runtimes_.at(id)->endpoint(), update);
    }
    auto replay = std::make_shared<ReplayRequest>();
    replay->slice = ack->slice;
    replay->processed = processed;
    for (const HostId id : sorted_keys(host_runtimes_)) {
      send_control(host_runtimes_.at(id)->endpoint(), replay);
    }
    // Co-recovery rendezvous: slices recovered before this one broadcast
    // their replay requests while this slice was not live anywhere, so the
    // events only its (restored) log holds were never re-sent. Re-deliver
    // those requests to the new host; channel/handler deduplication
    // absorbs any redundancy.
    const auto dst_endpoint = host_runtimes_.at(dst)->endpoint();
    // Sorted: re-sent replay requests serialize on the manager NIC too.
    for (const SliceId other : sorted_keys(pending_replays_)) {
      if (other == ack->slice) continue;
      auto again = std::make_shared<ReplayRequest>();
      again->slice = other;
      again->processed = pending_replays_.at(other);
      send_control(dst_endpoint, again);
    }
    pending_replays_[ack->slice] = processed;
    // External injections: re-deliver the logged suffix directly.
    SeqNo external_watermark = 0;
    for (const auto& [upstream, watermark] : processed) {
      if (upstream == kExternalChannel) external_watermark = watermark;
    }
    auto log = inject_log_.find(ack->slice);
    if (log != inject_log_.end()) {
      auto dst_runtime = host_runtimes_.find(dst);
      for (const WireEvent& event : log->second) {
        if (event.seq > external_watermark &&
            dst_runtime != host_runtimes_.end()) {
          dst_runtime->second->deliver_external(event);
        }
      }
    }
    auto done = std::move(recovery->second);
    recoveries_.erase(recovery);
    if (done) done();
    return;
  }

  if (!current_migration_) {
    ESH_WARN << "Engine: control message with no migration in flight";
    return;
  }
  MigrationTask& task = *current_migration_;
  using Step = MigrationTask::Step;

  if (const auto* ack = dynamic_cast<const CreateReplicaAck*>(msg)) {
    if (ack->migration != task.report.id ||
        task.step != Step::kCreateReplica) {
      return;
    }
    // Duplication of the external injection channel starts now: record the
    // shadow (Engine::inject consults it) and the catch-up point.
    directory_[task.report.slice].shadow = task.report.dst;
    task.catchup.clear();
    const auto inject_it = next_inject_seq_.find(task.report.slice);
    task.catchup.emplace_back(
        kExternalChannel,
        inject_it == next_inject_seq_.end() ? SeqNo{1} : inject_it->second);

    task.pending_dup_slices.clear();
    std::set<HostId> hosts;
    for (SliceId up : upstream_slices(task.report.slice)) {
      const HostId up_host = directory_.at(up).primary;
      // A lost upstream (host dead, recovery pending) cannot ack; once it
      // recovers, its replayed suffix reaches the replica through shadow
      // duplication like any live traffic.
      if (!host_runtimes_.contains(up_host)) continue;
      task.pending_dup_slices.insert(up);
      hosts.insert(up_host);
    }
    if (task.pending_dup_slices.empty()) {
      // No live DAG channels (source operator): freeze directly.
      task.set_step(Step::kTransfer);
      migration_step([this] { send_freeze(); });
      return;
    }
    task.set_step(Step::kDuplication);
    // One request per host holding at least one upstream slice.
    migration_step([this, hosts] {
      MigrationTask& t = *current_migration_;
      for (HostId host : hosts) {
        if (!host_runtimes_.contains(host)) continue;  // died meanwhile
        auto req = std::make_shared<StartDuplicationRequest>();
        req->migration = t.report.id;
        req->slice = t.report.slice;
        req->shadow_host = t.report.dst;
        req->reply_to = control_endpoint_;
        send_control(host_runtimes_.at(host)->endpoint(), std::move(req));
      }
    });
    return;
  }

  if (const auto* ack = dynamic_cast<const StartDuplicationAck*>(msg)) {
    if (ack->migration != task.report.id || task.step != Step::kDuplication) {
      return;
    }
    if (task.pending_dup_slices.erase(ack->upstream_slice) == 0) return;
    task.catchup.emplace_back(ack->upstream_slice, ack->next_seq);
    if (!task.pending_dup_slices.empty()) return;
    task.set_step(Step::kTransfer);
    migration_step([this] { send_freeze(); });
    return;
  }

  if (const auto* ack = dynamic_cast<const ActivatedAck*>(msg)) {
    if (ack->migration != task.report.id) return;
    // Ignore an activation that raced a destination crash: the activated
    // copy died with the host and the slice goes through the abort path.
    if (!host_runtimes_.contains(task.report.dst)) return;
    if (task.step != Step::kTransfer && task.step != Step::kAborting) return;
    task.report.frozen = ack->frozen_at;
    task.report.activated = ack->activated_at;
    task.report.state_bytes = ack->state_bytes;
    directory_[task.report.slice] =
        SliceLocation{task.report.dst, HostId{}};
    task.set_step(Step::kDirectoryUpdate);
    task.pending_update_hosts.clear();
    // lint:allow(unordered-iteration): fills a std::set, order-free
    for (const auto& [id, runtime] : host_runtimes_) {
      task.pending_update_hosts.insert(id);
    }
    migration_step([this] {
      MigrationTask& t = *current_migration_;
      // Sorted: update send order serializes on the manager NIC.
      for (const HostId id : sorted_keys(host_runtimes_)) {
        auto update = std::make_shared<DirectoryUpdateMessage>();
        update->migration = t.report.id;
        update->slice = t.report.slice;
        update->host = t.report.dst;
        update->reply_to = control_endpoint_;
        send_control(host_runtimes_.at(id)->endpoint(), std::move(update));
      }
    });
    return;
  }

  if (const auto* ack = dynamic_cast<const DirectoryUpdateAck*>(msg)) {
    if (ack->migration != task.report.id ||
        task.step != Step::kDirectoryUpdate) {
      return;
    }
    task.pending_update_hosts.erase(ack->from_host);
    if (task.pending_update_hosts.empty()) after_directory_acks();
    return;
  }

  if (const auto* ack = dynamic_cast<const TeardownAck*>(msg)) {
    if (ack->migration != task.report.id || task.step != Step::kTeardown) {
      return;
    }
    finish_migration(MigrationOutcome::kCompleted);
    return;
  }

  if (const auto* ack = dynamic_cast<const AbortMigrationAck*>(msg)) {
    if (ack->migration != task.report.id || task.step != Step::kAborting) {
      return;
    }
    // The source resolved the abort: either the slice resumed in place, or
    // its frozen state shipped to the dead destination and it needs
    // recovery. Either way, stop any lingering duplication.
    directory_[task.report.slice].shadow = HostId{};
    broadcast_location(task.report.slice,
                       directory_.at(task.report.slice).primary);
    if (!ack->resumed) {
      ESH_WARN << "Engine: migration abort lost slice "
               << task.report.slice.value() << " (state shipped to dead host)";
    }
    finish_migration(task.abort_outcome);
    return;
  }

  if (const auto* ack = dynamic_cast<const AbortReplicaAck*>(msg)) {
    if (ack->migration != task.report.id || task.step != Step::kAborting) {
      return;
    }
    if (ack->was_active) {
      // The state transfer raced the abort and the replica went live: the
      // migration actually completed despite the source's death.
      directory_[task.report.slice] =
          SliceLocation{task.report.dst, HostId{}};
      broadcast_location(task.report.slice, task.report.dst);
      finish_migration(MigrationOutcome::kCompleted);
      return;
    }
    directory_[task.report.slice].shadow = HostId{};
    broadcast_location(task.report.slice,
                       directory_.at(task.report.slice).primary);
    finish_migration(task.abort_outcome);
    return;
  }

  ESH_WARN << "Engine: unrecognized control message";
}

}  // namespace esh::engine
