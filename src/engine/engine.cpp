#include "engine/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/protocol_spec.hpp"
#include "common/det.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace esh::engine {

const char* to_string(MigrationOutcome outcome) {
  switch (outcome) {
    case MigrationOutcome::kCompleted: return "completed";
    case MigrationOutcome::kRejected: return "rejected";
    case MigrationOutcome::kAbortedSrcFailed: return "aborted-src-failed";
    case MigrationOutcome::kAbortedDstFailed: return "aborted-dst-failed";
  }
  return "unknown";
}

const char* to_string(MigrationStep step) {
  switch (step) {
    case MigrationStep::kCreateReplica: return "create-replica";
    case MigrationStep::kDuplication: return "duplication";
    case MigrationStep::kTransfer: return "transfer";
    case MigrationStep::kDirectoryUpdate: return "directory-update";
    case MigrationStep::kTeardown: return "teardown";
    case MigrationStep::kAborting: return "aborting";
    case MigrationStep::kPark: return "park";
    case MigrationStep::kPrecopy: return "precopy";
  }
  return "unknown";
}

bool migration_transition_legal(MigrationStep from, MigrationStep to) {
  // Edge list (and the why of each edge) lives in the declarative table in
  // src/analysis/protocol_spec.cpp — the same table the model checker and
  // docs/SPEC_CATALOG.md are built from.
  return analysis::migration_spec().legal(static_cast<std::size_t>(from),
                                          static_cast<std::size_t>(to));
}

void assert_migration_transition([[maybe_unused]] MigrationId id,
                                 [[maybe_unused]] SliceId slice,
                                 [[maybe_unused]] MigrationStep from,
                                 [[maybe_unused]] MigrationStep to) {
  ESH_STATE_MACHINE_ASSERT(
      "engine", "migration-step-legal", migration_transition_legal(from, to),
      ::esh::contracts::Detail{}
          .slice(slice)
          .transition(to_string(from), to_string(to))
          .note("migration " + std::to_string(id.value())));
}

void assert_migration_transition([[maybe_unused]] const MigrationStrategy&
                                     strategy,
                                 [[maybe_unused]] MigrationId id,
                                 [[maybe_unused]] SliceId slice,
                                 [[maybe_unused]] MigrationStep from,
                                 [[maybe_unused]] MigrationStep to) {
#if ESH_INVARIANTS_ENABLED
  // Each strategy checks the shared-enum transition against its own spec
  // table; spec_index maps to the table's state order and sends steps a
  // strategy never uses out of range, which legal() rejects.
  const bool legal =
      strategy.spec().legal(strategy.spec_index(from), strategy.spec_index(to));
  const auto detail = ::esh::contracts::Detail{}
                          .slice(slice)
                          .transition(to_string(from), to_string(to))
                          .note("migration " + std::to_string(id.value()) +
                                " via " + std::string{strategy.name()});
  // One literal assert site per strategy so each spec table's invariant name
  // is greppable back to the code that enforces it.
  switch (strategy.kind()) {
    case MigrationStrategyKind::kBufferedReplay:
      ESH_STATE_MACHINE_ASSERT("engine", "migration-step-legal", legal,
                               detail);
      return;
    case MigrationStrategyKind::kStopAndRestart:
      ESH_STATE_MACHINE_ASSERT("engine", "stop-restart-step-legal", legal,
                               detail);
      return;
    case MigrationStrategyKind::kIncrementalPrecopy:
      ESH_STATE_MACHINE_ASSERT("engine", "precopy-step-legal", legal, detail);
      return;
  }
#endif
}

const char* to_string(TransitionKind kind) {
  switch (kind) {
    case TransitionKind::kSplit: return "split";
    case TransitionKind::kMerge: return "merge";
  }
  return "unknown";
}

const char* to_string(SplitStep step) {
  switch (step) {
    case SplitStep::kCreateChild: return "create-child";
    case SplitStep::kCutOver: return "cut-over";
    case SplitStep::kDrain: return "drain";
    case SplitStep::kActivate: return "activate";
    case SplitStep::kAborting: return "aborting";
  }
  return "unknown";
}

const char* to_string(MergeStep step) {
  switch (step) {
    case MergeStep::kCutOver: return "cut-over";
    case MergeStep::kDrainRetiree: return "drain-retiree";
    case MergeStep::kAbsorb: return "absorb";
    case MergeStep::kTeardown: return "teardown";
  }
  return "unknown";
}

bool split_transition_legal(SplitStep from, SplitStep to) {
  return analysis::split_spec().legal(static_cast<std::size_t>(from),
                                      static_cast<std::size_t>(to));
}

bool merge_transition_legal(MergeStep from, MergeStep to) {
  return analysis::merge_spec().legal(static_cast<std::size_t>(from),
                                      static_cast<std::size_t>(to));
}

void assert_split_transition([[maybe_unused]] MigrationId id,
                             [[maybe_unused]] SliceId slice,
                             [[maybe_unused]] SplitStep from,
                             [[maybe_unused]] SplitStep to) {
  ESH_STATE_MACHINE_ASSERT(
      "engine", "split-step-legal", split_transition_legal(from, to),
      ::esh::contracts::Detail{}
          .slice(slice)
          .transition(to_string(from), to_string(to))
          .note("transition " + std::to_string(id.value())));
}

void assert_merge_transition([[maybe_unused]] MigrationId id,
                             [[maybe_unused]] SliceId slice,
                             [[maybe_unused]] MergeStep from,
                             [[maybe_unused]] MergeStep to) {
  ESH_STATE_MACHINE_ASSERT(
      "engine", "merge-step-legal", merge_transition_legal(from, to),
      ::esh::contracts::Detail{}
          .slice(slice)
          .transition(to_string(from), to_string(to))
          .note("transition " + std::to_string(id.value())));
}

Engine::Engine(sim::Simulator& simulator, net::Network& network,
               HostId manager_host, EngineConfig config, std::uint64_t seed)
    : simulator_(simulator),
      network_(network),
      config_(config),
      worker_pool_(std::max(config.worker_threads, config.match_threads) > 1
                       ? std::make_unique<ThreadPool>(std::max(
                             config.worker_threads, config.match_threads))
                       : nullptr),
      rng_(seed),
      manager_host_(manager_host) {
  seed_ = seed;
  control_endpoint_ = network_.new_endpoint();
  if (config_.reliable_control) {
    control_channel_ = std::make_unique<net::ReliableChannel>(
        simulator_, network_, control_endpoint_, manager_host_,
        [this](const net::Delivery& d) { on_control(d); }, config_.reliable);
    control_channel_->on_give_up(
        [this](net::Endpoint peer) { notify_control_give_up(peer); });
  } else {
    network_.bind(control_endpoint_, manager_host_,
                  [this](const net::Delivery& d) { on_control(d); });
  }
}

Engine::~Engine() {
  host_runtimes_.clear();
  control_channel_.reset();  // unbinds the control endpoint when reliable
  if (network_.bound(control_endpoint_)) {
    network_.unbind(control_endpoint_);
  }
}

void Engine::add_host(cluster::Host& host) {
  const HostId id = host.id();
  if (host_runtimes_.contains(id)) {
    throw std::logic_error{"Engine::add_host: host already added"};
  }
  auto runtime = std::make_unique<HostRuntime>(*this, host);
  // Configuration distribution: the new host learns every peer endpoint and
  // the current directory; peers learn the new host.
  // lint:allow(unordered-iteration): local endpoint-table writes, order-free
  for (auto& [other_id, other] : host_runtimes_) {
    other->set_host_endpoint(id, runtime->endpoint());
    runtime->set_host_endpoint(other_id, other->endpoint());
  }
  runtime->set_host_endpoint(id, runtime->endpoint());
  runtime->set_directory(directory_);
  if (probe_target_) {
    runtime->enable_probes(*probe_target_, config_.probe_interval);
  }
  control_peers_[runtime->endpoint()] = id;
  host_runtimes_[id] = std::move(runtime);
}

void Engine::remove_host(HostId host) {
  auto it = host_runtimes_.find(host);
  if (it == host_runtimes_.end()) {
    throw std::logic_error{"Engine::remove_host: unknown host"};
  }
  if (it->second->slice_count() != 0) {
    throw std::logic_error{"Engine::remove_host: host still holds slices"};
  }
  host_runtimes_.erase(it);
}

bool Engine::has_host(HostId host) const {
  return host_runtimes_.contains(host);
}

std::vector<HostId> Engine::hosts() const {
  // Sorted: callers (placement, recovery orchestration) branch on this
  // order, so it must not depend on hash-table layout.
  return sorted_keys(host_runtimes_);
}

void Engine::deploy(
    const Topology& topology,
    const std::unordered_map<std::string, std::vector<HostId>>& placement) {
  if (deployed_) {
    throw std::logic_error{"Engine::deploy: already deployed"};
  }
  auto cfg = std::make_shared<StaticConfig>();
  for (std::uint32_t i = 0; i < topology.operators.size(); ++i) {
    const OperatorSpec& spec = topology.operators[i];
    if (spec.slices == 0 || !spec.factory) {
      throw std::invalid_argument{"deploy: operator needs slices and factory"};
    }
    if (cfg->op_by_name.contains(spec.name)) {
      throw std::invalid_argument{"deploy: duplicate operator name"};
    }
    StaticConfig::OperatorInfo info;
    info.id = OperatorId{i};
    info.name = spec.name;
    info.factory = spec.factory;
    for (std::uint32_t s = 0; s < spec.slices; ++s) {
      const SliceId slice{next_slice_++};
      info.slices.push_back(slice);
      // Deploy-time coverage is plain modulo: slice s covers key % N == s.
      info.coverages.push_back(
          KeyCoverage{static_cast<std::uint32_t>(spec.slices), s, 0, 0});
      cfg->slice_infos[slice] = StaticConfig::SliceInfo{i, s};
    }
    info.coverage_base = static_cast<std::uint32_t>(spec.slices);
    cfg->op_by_name[spec.name] = i;
    cfg->operators.push_back(std::move(info));
  }
  for (const DagEdge& edge : topology.edges) {
    const auto from = cfg->op_by_name.find(edge.from);
    const auto to = cfg->op_by_name.find(edge.to);
    if (from == cfg->op_by_name.end() || to == cfg->op_by_name.end()) {
      throw std::invalid_argument{"deploy: edge references unknown operator"};
    }
    cfg->operators[to->second].upstream_ops.push_back(from->second);
  }

  // Resolve and validate the whole placement before mutating any engine
  // state: a failed deploy leaves the engine untouched and retryable.
  std::unordered_map<SliceId, SliceLocation> resolved;
  for (const auto& op : cfg->operators) {
    auto it = placement.find(op.name);
    if (it == placement.end() || it->second.size() != op.slices.size()) {
      throw std::invalid_argument{
          "deploy: placement must give one host per slice of every operator"};
    }
    for (std::size_t s = 0; s < op.slices.size(); ++s) {
      const HostId host = it->second[s];
      if (!host_runtimes_.contains(host)) {
        throw std::invalid_argument{"deploy: placement host not added"};
      }
      resolved[op.slices[s]] = SliceLocation{host, HostId{}};
    }
  }

  // Commit. mutable_static_ aliases the same object: split/merge cut-overs
  // refine it in place (atomically within one simulator callback).
  mutable_static_ = std::move(cfg);
  static_ = mutable_static_;
  directory_ = std::move(resolved);
  // lint:allow(unordered-iteration): local directory writes, order-free
  for (auto& [id, runtime] : host_runtimes_) {
    runtime->set_directory(directory_);
  }
  // Sorted: arming order no longer matters for timer phasing (each slice's
  // timers carry a seed-derived phase), but keeping it deterministic by
  // construction costs nothing.
  for (const SliceId slice : sorted_keys(directory_)) {
    host_runtimes_.at(directory_.at(slice).primary)
        ->add_slice(slice, SliceRuntime::State::kActive);
  }
  deployed_ = true;
}

void Engine::inject(std::string_view op, std::size_t slice_index,
                    PayloadPtr payload) {
  const SliceId slice = slice_id(op, slice_index);
  const SliceLocation& loc = directory_.at(slice);
  // External pushes ride a sequence-numbered virtual channel, duplicated to
  // the shadow during migration exactly like slice-to-slice traffic.
  auto [it, inserted] = next_inject_seq_.try_emplace(slice, 1);
  WireEvent event{kExternalChannel, slice, it->second++, std::move(payload)};
  if (config_.checkpoints.enabled) {
    inject_log_[slice].push_back(event);
  }
  if (loc.redirect && loc.shadow.valid() && loc.shadow != loc.primary) {
    // Park mode (stop-and-restart): the replica is the only receiver; the
    // primary drains what it already holds and freezes.
    host_runtimes_.at(loc.shadow)->deliver_external(event);
    return;
  }
  host_runtimes_.at(loc.primary)->deliver_external(event);
  if (loc.shadow.valid() && loc.shadow != loc.primary) {
    note_duplicate_bytes(event.payload->bytes() +
                         config_.cost.event_header_bytes);
    host_runtimes_.at(loc.shadow)->deliver_external(event);
  }
}

std::vector<SliceId> Engine::fail_host(HostId host) {
  if (!config_.checkpoints.enabled) {
    throw std::logic_error{"fail_host requires checkpoints to be enabled"};
  }
  auto it = host_runtimes_.find(host);
  if (it == host_runtimes_.end()) {
    throw std::invalid_argument{"fail_host: unknown host"};
  }
  std::vector<SliceId> lost;
  for (SliceId slice : it->second->slice_ids()) {
    it->second->slice(slice)->retire();  // pending CPU jobs die harmlessly
    // Only slices the directory still places here are lost: a mid-migration
    // replica (primary elsewhere) dies without losing anything.
    const auto loc = directory_.find(slice);
    if (loc != directory_.end() && loc->second.primary == host) {
      // A split child mid-transition is owned by the transition coordinator
      // (handle_transition_host_failure re-drives it onto a replacement
      // host); keep it out of the generic recovery sweep so it is not
      // restored twice.
      if (current_transition_ &&
          current_transition_->report.kind == TransitionKind::kSplit &&
          slice == current_transition_->report.child) {
        continue;
      }
      lost.push_back(slice);
    }
  }
  it->second->disable_probes();
  // Tear down the dead host's reliable channel first: otherwise its
  // retransmission timers keep firing post-quarantine and eventually report
  // LIVE peers unreachable from the corpse's point of view.
  it->second->shutdown_control_channel();
  if (network_.bound(it->second->endpoint())) {
    network_.unbind(it->second->endpoint());  // in-flight messages drop
  }
  // Drop the coordinator's own unacked traffic toward the corpse: its
  // endpoint is gone, so every retry is wasted simulated bandwidth (and a
  // redundant give-up escalation later).
  if (control_channel_) control_channel_->forget_peer(it->second->endpoint());
  // Quarantine the runtime: CPU-job callbacks may still reference it.
  failed_runtimes_.push_back(std::move(it->second));
  host_runtimes_.erase(it);
  std::sort(lost.begin(), lost.end());
  // Record regenerated-stream bases for every lost multi-input slice NOW,
  // before any restore message is built: a consumer co-recovering in the
  // same sweep must see the clamp in its restore watermarks, and the order
  // in which the manager issues recover_slice calls is placement-driven.
  for (const SliceId slice : lost) register_recovery_rebases(slice);
  // Unwedge the migration protocol: abort or advance the in-flight
  // migration if the dead host participated in it.
  handle_host_failure(host);
  // Same for an in-flight split/merge.
  handle_transition_host_failure(host);
  return lost;
}

bool Engine::slice_lost(SliceId slice) const {
  const auto it = directory_.find(slice);
  if (it == directory_.end()) return false;
  const auto host_it = host_runtimes_.find(it->second.primary);
  return host_it == host_runtimes_.end() ||
         !host_it->second->has_slice(slice);
}

void Engine::recover_slice(SliceId slice, HostId dst,
                           std::function<void()> done) {
  if (!directory_.contains(slice)) {
    throw std::invalid_argument{"recover_slice: unknown slice"};
  }
  if (!host_runtimes_.contains(dst)) {
    throw std::invalid_argument{"recover_slice: unknown destination host"};
  }
  recoveries_[slice] = std::move(done);
  directory_[slice] = SliceLocation{dst, HostId{}};
  auto msg = std::make_shared<RestoreFromCheckpointMessage>();
  msg->slice = slice;
  msg->reply_to = control_endpoint_;
  std::size_t bytes = 96;
  if (auto cp = checkpoints_.find(slice); cp != checkpoints_.end()) {
    msg->state = cp->second.state;
    msg->processed = cp->second.processed;
    msg->out_seqs = cp->second.out_seqs;
    msg->log = cp->second.log;
    msg->coverage_epoch = cp->second.coverage_epoch;
    bytes = msg->state->size() + 64 * msg->log.size();
  }
  // Mid-split/merge recovery: install the cut-over holds before the replica
  // drains, so replayed post-cut events stay queued until the re-driven
  // capture or absorb releases them (see RollForward).
  if (auto pending = rollforward_.find(slice); pending != rollforward_.end()) {
    msg->holds = pending->second.cutover;
  }
  // Co-recovery with a regenerated upstream: restored channel watermarks
  // still counting the old stream rewind to the regenerated base, so the
  // replayed suffix is accepted instead of deduplicated (see
  // recovery_rebases_).
  msg->processed = clamp_to_rebases(slice, std::move(msg->processed));
  // No checkpoint: bootstrap restore with null state and zero watermarks.
  // The retained logs are complete precisely because no checkpoint ever
  // truncated them, so the full replay rebuilds the state from scratch.
  send_control(host_runtimes_.at(dst)->endpoint(), std::move(msg), bytes);
}

SliceId Engine::slice_id(std::string_view op, std::size_t slice_index) const {
  if (!static_) {
    throw std::logic_error{"Engine: not deployed yet"};
  }
  // Scan by slice_index rather than position: merges erase entries from
  // `slices`, so positions shift while indices stay stable.
  const auto& info = static_->operators.at(static_->index_of(op));
  for (const SliceId slice : info.slices) {
    if (static_->info_of(slice).slice_index == slice_index) return slice;
  }
  throw std::out_of_range{"slice_id: no slice with that index"};
}

KeyCoverage Engine::slice_coverage(SliceId slice) const {
  const auto& op = static_->op_of(slice);
  for (std::size_t i = 0; i < op.slices.size(); ++i) {
    if (op.slices[i] == slice) return op.coverages.at(i);
  }
  throw std::invalid_argument{"slice_coverage: slice not routed"};
}

StaticConfig::OperatorInfo& Engine::mutable_op_of(SliceId slice) {
  return mutable_static_->operators.at(static_->info_of(slice).op_index);
}

HostId Engine::slice_host(SliceId slice) const {
  auto it = directory_.find(slice);
  if (it == directory_.end()) {
    throw std::logic_error{"slice_host: unknown slice"};
  }
  return it->second.primary;
}

std::vector<SliceId> Engine::slices_on(HostId host) const {
  std::vector<SliceId> out;
  // lint:allow(unordered-iteration): result is sorted below
  for (const auto& [slice, loc] : directory_) {
    if (loc.primary == host) out.push_back(slice);
  }
  std::sort(out.begin(), out.end());
  return out;
}

SliceRuntime* Engine::slice_runtime(SliceId slice) {
  auto it = directory_.find(slice);
  if (it == directory_.end()) return nullptr;
  auto host_it = host_runtimes_.find(it->second.primary);
  if (host_it == host_runtimes_.end()) return nullptr;
  return host_it->second->slice(slice);
}

void Engine::enable_probes(net::Endpoint target) {
  probe_target_ = target;
  // Sorted: probe-timer scheduling order decides same-tick probe ties.
  for (const HostId id : sorted_keys(host_runtimes_)) {
    host_runtimes_.at(id)->enable_probes(target, config_.probe_interval);
  }
}

// ---- migration coordination --------------------------------------------------

void Engine::migrate(SliceId slice, HostId dst, MigrationCallback callback) {
  migrate(slice, dst, MigrationStrategyKind::kBufferedReplay,
          std::move(callback));
}

void Engine::migrate(SliceId slice, HostId dst, MigrationStrategyKind strategy,
                     MigrationCallback callback) {
  MigrationTask task;
  task.strategy = &strategy_for(strategy);
  task.report.strategy = task.strategy->name();
  task.report.id = MigrationId{next_migration_++};
  task.report.slice = slice;
  task.report.dst = dst;
  task.report.requested = simulator_.now();
  task.callback = std::move(callback);
  const auto dir_it = directory_.find(slice);
  if (dir_it == directory_.end() || !host_runtimes_.contains(dst)) {
    // Invalid request: reject through the callback so callers learn the
    // outcome the same way they learn any other.
    task.report.outcome = MigrationOutcome::kRejected;
    task.report.completed = simulator_.now();
    if (task.callback) task.callback(task.report);
    return;
  }
  task.report.src = dir_it->second.primary;
  if (task.report.src == dst) {
    // Degenerate migration: report immediately.
    task.report.frozen = task.report.activated = task.report.completed =
        simulator_.now();
    if (task.callback) task.callback(task.report);
    return;
  }
  migration_queue_.push_back(std::move(task));
  start_next_migration();
}

void Engine::start_next_migration() {
  // One elastic operation of either family (migration or split/merge) runs
  // at a time; migrations take priority when both are queued.
  while (!current_migration_ && !current_transition_ &&
         !migration_queue_.empty()) {
    MigrationTask task = std::move(migration_queue_.front());
    migration_queue_.pop_front();
    // Cluster state may have changed while the request was queued: the
    // slice may have moved, been lost to a crash, or the destination host
    // may have died. Reject stale moves instead of wedging on them.
    const auto dir_it = directory_.find(task.report.slice);
    const HostId src =
        dir_it == directory_.end() ? HostId{} : dir_it->second.primary;
    const auto src_it = host_runtimes_.find(src);
    const bool src_ok = src_it != host_runtimes_.end() &&
                        src_it->second->has_slice(task.report.slice);
    if (!src_ok || !host_runtimes_.contains(task.report.dst)) {
      task.report.outcome = MigrationOutcome::kRejected;
      task.report.completed = simulator_.now();
      if (task.callback) task.callback(task.report);
      continue;
    }
    task.report.src = src;
    if (src == task.report.dst) {
      task.report.frozen = task.report.activated = task.report.completed =
          simulator_.now();
      if (task.callback) task.callback(task.report);
      continue;
    }
    current_migration_ = std::move(task);
    current_migration_->dup_bytes_base = duplicate_bytes_total_;
    migration_step([this] {
      MigrationTask& t = *current_migration_;
      auto req = std::make_shared<CreateReplicaRequest>();
      req->migration = t.report.id;
      req->slice = t.report.slice;
      req->reply_to = control_endpoint_;
      send_control(host_runtimes_.at(t.report.dst)->endpoint(),
                   std::move(req));
    });
    // Last: the hook may fail hosts, aborting this migration re-entrantly
    // (the while condition re-checks current_migration_).
    fire_migration_step();
  }
}

bool Engine::fire_migration_step() {
  if (!current_migration_) return false;
  if (!migration_step_hook_) return true;
  // The hook may fail hosts (the crash-at-every-step torture tests do
  // exactly that), which can abort or finish the migration re-entrantly;
  // tell the caller whether the one it was driving is still current.
  const MigrationId id = current_migration_->report.id;
  migration_step_hook_(current_migration_->report,
                       to_string(current_migration_->step));
  return current_migration_ && current_migration_->report.id == id;
}

void Engine::advance_after_duplication() {
  MigrationTask& t = *current_migration_;
  if (t.strategy->precopy_rounds(config_) > 0) {
    t.set_step(MigrationTask::Step::kPrecopy);
    start_precopy_round();
  } else {
    t.set_step(MigrationTask::Step::kTransfer);
    migration_step([this] { send_freeze(); });
    fire_migration_step();
  }
}

void Engine::start_precopy_round() {
  MigrationTask& t = *current_migration_;
  ++t.round;
  ESH_INVARIANT("engine", "precopy-rounds-bounded",
                t.round <= t.strategy->precopy_rounds(config_),
                ::esh::contracts::Detail{}
                    .slice(t.report.slice)
                    .expected("round <= " + std::to_string(
                                  t.strategy->precopy_rounds(config_)))
                    .actual(std::to_string(t.round))
                    .note("migration " + std::to_string(t.report.id.value())));
  migration_step([this] {
    MigrationTask& t = *current_migration_;
    auto req = std::make_shared<PrecopyRequest>();
    req->migration = t.report.id;
    req->slice = t.report.slice;
    req->round = t.round;
    req->dst_host = t.report.dst;
    req->reply_to = control_endpoint_;
    send_control(host_runtimes_.at(t.report.src)->endpoint(), std::move(req));
  });
  fire_migration_step();
}

void Engine::finish_migration(MigrationOutcome outcome) {
  MigrationTask task = std::move(*current_migration_);
  current_migration_.reset();
  task.report.outcome = outcome;
  task.report.completed = simulator_.now();
  task.report.precopy_bytes = task.precopy_bytes;
  // Migrations are serialized, so every duplicate byte since the snapshot
  // belongs to this move.
  task.report.duplicate_bytes = duplicate_bytes_total_ - task.dup_bytes_base;
  // Report timestamps must be causally ordered. frozen/activated stay zero
  // on abort paths where the ActivatedAck never arrived, so the freeze-
  // before-activate ordering is only checkable when both were recorded.
  ESH_INVARIANT("engine", "migration-report-ordered",
                task.report.completed >= task.report.requested &&
                    (task.report.frozen == SimTime{} ||
                     task.report.activated == SimTime{} ||
                     (task.report.frozen >= task.report.requested &&
                      task.report.activated >= task.report.frozen &&
                      task.report.completed >= task.report.activated)),
                ::esh::contracts::Detail{}
                    .slice(task.report.slice)
                    .expected("requested <= frozen <= activated <= completed")
                    .actual(std::to_string(task.report.requested.count()) +
                            "/" + std::to_string(task.report.frozen.count()) +
                            "/" +
                            std::to_string(task.report.activated.count()) +
                            "/" +
                            std::to_string(task.report.completed.count())));
  if (outcome == MigrationOutcome::kCompleted) ++migrations_completed_;
  if (task.callback) task.callback(task.report);
  start_next_migration();
  start_next_transition();
}

// ---- split / merge coordination ---------------------------------------------

void Engine::split_slice(SliceId parent, HostId dst,
                         TransitionCallback callback) {
  TransitionTask task;
  task.report.id = MigrationId{next_migration_++};
  task.report.kind = TransitionKind::kSplit;
  task.report.parent = parent;
  task.report.requested = simulator_.now();
  task.callback = std::move(callback);
  task.dst = dst;
  transition_queue_.push_back(std::move(task));
  start_next_transition();
}

void Engine::merge_slices(SliceId survivor, SliceId retiree,
                          TransitionCallback callback) {
  TransitionTask task;
  task.report.id = MigrationId{next_migration_++};
  task.report.kind = TransitionKind::kMerge;
  task.report.parent = survivor;
  task.report.child = retiree;
  task.report.requested = simulator_.now();
  task.callback = std::move(callback);
  transition_queue_.push_back(std::move(task));
  start_next_transition();
}

void Engine::start_next_transition() {
  // Coverage of a slice under the CURRENT routing, or nullptr when the
  // slice is not routed (merged away / never deployed).
  const auto coverage_of = [this](SliceId slice) -> const KeyCoverage* {
    if (!static_ || !static_->slice_infos.contains(slice)) return nullptr;
    const auto& op = static_->op_of(slice);
    for (std::size_t i = 0; i < op.slices.size(); ++i) {
      if (op.slices[i] == slice) return &op.coverages[i];
    }
    return nullptr;
  };
  while (!current_migration_ && !current_transition_ &&
         !transition_queue_.empty()) {
    TransitionTask task = std::move(transition_queue_.front());
    transition_queue_.pop_front();
    const auto reject = [&] {
      task.report.completed = false;
      task.report.finished = simulator_.now();
      if (task.callback) task.callback(task.report);
    };
    // Re-validate against current cluster state (the request may have
    // queued behind operations that changed it).
    if (task.report.kind == TransitionKind::kSplit) {
      SliceRuntime* parent = slice_runtime(task.report.parent);
      const KeyCoverage* cov = coverage_of(task.report.parent);
      if (parent == nullptr || cov == nullptr ||
          !host_runtimes_.contains(task.dst) ||
          !parent->handler().supports_split() || cov->depth >= 62) {
        reject();
        continue;
      }
      if (rollforward_.contains(task.report.parent)) {
        // An earlier capture on this slice is not yet proven durable, and
        // re-driving two stacked captures after a crash is unsupported.
        // Force the durability boundary and retry when it lands.
        parent->checkpoint(control_endpoint_);
        transition_queue_.push_front(std::move(task));
        return;
      }
      current_transition_ = std::move(task);
      begin_split_transition();
    } else {
      SliceRuntime* survivor = slice_runtime(task.report.parent);
      SliceRuntime* retiree = slice_runtime(task.report.child);
      const KeyCoverage* surv_cov = coverage_of(task.report.parent);
      const KeyCoverage* ret_cov = coverage_of(task.report.child);
      if (survivor == nullptr || retiree == nullptr || surv_cov == nullptr ||
          ret_cov == nullptr || task.report.parent == task.report.child ||
          !survivor->handler().supports_split() ||
          !surv_cov->sibling_of(*ret_cov)) {
        reject();
        continue;
      }
      if (rollforward_.contains(task.report.parent) ||
          rollforward_.contains(task.report.child)) {
        survivor->checkpoint(control_endpoint_);
        retiree->checkpoint(control_endpoint_);
        transition_queue_.push_front(std::move(task));
        return;
      }
      current_transition_ = std::move(task);
      begin_merge_transition();
    }
  }
}

void Engine::finish_transition(bool completed) {
  TransitionTask task = std::move(*current_transition_);
  current_transition_.reset();
  task.report.completed = completed;
  task.report.finished = simulator_.now();
  if (completed) {
    if (task.report.kind == TransitionKind::kSplit) {
      ++splits_completed_;
    } else {
      ++merges_completed_;
    }
  }
  if (task.callback) task.callback(task.report);
  start_next_migration();
  start_next_transition();
}

bool Engine::fire_elastic_step(std::string_view step) {
  if (!current_transition_) return false;
  if (!elastic_step_hook_) return true;
  // The hook may fail hosts (the torture tests do exactly that), which can
  // abort or finish the transition re-entrantly; tell the caller whether
  // the transition it was driving is still the current one.
  const MigrationId id = current_transition_->report.id;
  elastic_step_hook_(current_transition_->report, step);
  return current_transition_ && current_transition_->report.id == id;
}

std::vector<std::pair<SliceId, SeqNo>> Engine::capture_cut_vector(
    SliceId slice) {
  // Per live upstream channel, the first post-cut-over sequence number,
  // read in-process at the cut-over instant (the atomic routing flip the
  // real engine achieves with a synchronized table swap). A lost upstream
  // contributes no entry: an upstream crash concurrent with a cut-over is
  // out of scope (see PROTOCOL.md).
  std::vector<std::pair<SliceId, SeqNo>> cut;
  for (const SliceId up : upstream_slices(slice)) {
    SliceRuntime* rt = slice_runtime(up);
    if (rt == nullptr) continue;
    cut.emplace_back(up, rt->next_seq_for(slice));
  }
  if (auto it = next_inject_seq_.find(slice); it != next_inject_seq_.end()) {
    cut.emplace_back(kExternalChannel, it->second);
  }
  return cut;
}

void Engine::begin_split_transition() {
  TransitionTask& t = *current_transition_;
  // Allocate the child identity: fresh SliceId, slice_index one past the
  // operator's current maximum. Indices stay sparse after merges — routing
  // goes by coverage and downstream completion by fan membership, so only
  // uniqueness matters.
  StaticConfig::OperatorInfo& op = mutable_op_of(t.report.parent);
  const std::uint32_t op_index = static_->info_of(t.report.parent).op_index;
  std::uint32_t child_index = 0;
  for (const SliceId s : op.slices) {
    child_index = std::max(child_index, static_->info_of(s).slice_index + 1);
  }
  const SliceId child{next_slice_++};
  t.report.child = child;
  mutable_static_->slice_infos[child] =
      StaticConfig::SliceInfo{op_index, child_index};
  const KeyCoverage parent_now = slice_coverage(t.report.parent);
  t.parent_cov = parent_now.split_parent();
  t.child_cov = parent_now.split_child();
  // Replica + directory registration precede the cut-over, so every event
  // ever routed to the child is either buffered by the replica or delivered
  // after activation.
  directory_[child] = SliceLocation{t.dst, HostId{}};
  auto req = std::make_shared<CreateReplicaRequest>();
  req->migration = t.report.id;
  req->slice = child;
  req->reply_to = control_endpoint_;
  send_control(host_runtimes_.at(t.dst)->endpoint(), std::move(req));
  t.pending_update_hosts.clear();
  // lint:allow(unordered-iteration): fills a std::set, order-free
  for (const auto& [id, runtime] : host_runtimes_) {
    t.pending_update_hosts.insert(id);
  }
  // Sorted: send order serializes on the manager NIC.
  for (const HostId id : sorted_keys(host_runtimes_)) {
    auto update = std::make_shared<DirectoryUpdateMessage>();
    update->migration = t.report.id;
    update->slice = child;
    update->host = t.dst;
    update->reply_to = control_endpoint_;
    send_control(host_runtimes_.at(id)->endpoint(), std::move(update));
  }
  fire_elastic_step(to_string(SplitStep::kCreateChild));
}

void Engine::split_cutover() {
  TransitionTask& t = *current_transition_;
  t.set_split_step(SplitStep::kCutOver);
  StaticConfig::OperatorInfo& op = mutable_op_of(t.report.parent);
  std::size_t pos = op.slices.size();
  for (std::size_t i = 0; i < op.slices.size(); ++i) {
    if (op.slices[i] == t.report.parent) pos = i;
  }
  if (testing_corrupt_split_plan) {
    // Seeded fault: "forget" to refine the parent, leaving parent and child
    // overlapping. The completeness contract below must trip.
    testing_corrupt_split_plan = false;
  } else {
    op.coverages.at(pos) = t.parent_cov;
  }
  op.slices.push_back(t.report.child);
  op.coverages.push_back(t.child_cov);
  op.refined = true;
  ++routing_epoch_;
  ESH_INVARIANT("engine", "key-coverage-complete",
                coverage_complete(op.coverages, op.coverage_base),
                ::esh::contracts::Detail{}
                    .slice(t.report.parent)
                    .note("split cut-over of operator " + op.name));
  t.report.cutover = simulator_.now();
  SliceRuntime* parent = slice_runtime(t.report.parent);
  SliceRuntime::SplitSpec spec;
  spec.transition = t.report.id;
  spec.child = t.report.child;
  spec.child_cov = t.child_cov;
  spec.cutover = capture_cut_vector(t.report.parent);
  spec.reply_to = control_endpoint_;
  if (config_.checkpoints.enabled) {
    RollForward roll;
    roll.role = RollForward::Role::kSplitParent;
    roll.transition = t.report.id;
    roll.epoch = parent->coverage_epoch() + 1;
    roll.other = t.report.child;
    roll.cov = t.child_cov;
    roll.cutover = spec.cutover;
    rollforward_[t.report.parent] = std::move(roll);
  }
  parent->begin_split(std::move(spec));
  t.set_split_step(SplitStep::kDrain);
  fire_elastic_step(to_string(SplitStep::kDrain));
}

void Engine::begin_merge_transition() {
  TransitionTask& t = *current_transition_;
  const SliceId survivor = t.report.parent;
  const SliceId retiree = t.report.child;
  t.retiree_host = directory_.at(retiree).primary;
  t.merged_cov = slice_coverage(survivor).merged();
  SliceRuntime* survivor_rt = slice_runtime(survivor);
  SliceRuntime* retiree_rt = slice_runtime(retiree);
  // Cut vectors and the routing flip happen at one simulated instant, so
  // order within this callback is immaterial: no event moves in between.
  const auto survivor_cut = capture_cut_vector(survivor);
  const auto retiree_final = capture_cut_vector(retiree);
  StaticConfig::OperatorInfo& op = mutable_op_of(survivor);
  std::size_t surv_pos = op.slices.size();
  std::size_t ret_pos = op.slices.size();
  for (std::size_t i = 0; i < op.slices.size(); ++i) {
    if (op.slices[i] == survivor) surv_pos = i;
    if (op.slices[i] == retiree) ret_pos = i;
  }
  op.coverages.at(surv_pos) = t.merged_cov;
  op.slices.erase(op.slices.begin() + static_cast<std::ptrdiff_t>(ret_pos));
  op.coverages.erase(op.coverages.begin() +
                     static_cast<std::ptrdiff_t>(ret_pos));
  ++routing_epoch_;
  ESH_INVARIANT("engine", "key-coverage-complete",
                coverage_complete(op.coverages, op.coverage_base),
                ::esh::contracts::Detail{}
                    .slice(survivor)
                    .note("merge cut-over of operator " + op.name));
  t.report.cutover = simulator_.now();
  if (config_.checkpoints.enabled) {
    RollForward surv_roll;
    surv_roll.role = RollForward::Role::kMergeSurvivor;
    surv_roll.transition = t.report.id;
    surv_roll.epoch = survivor_rt->coverage_epoch() + 1;
    surv_roll.other = retiree;
    surv_roll.cutover = survivor_cut;
    rollforward_[survivor] = std::move(surv_roll);
    RollForward ret_roll;
    ret_roll.role = RollForward::Role::kMergeRetiree;
    ret_roll.transition = t.report.id;
    ret_roll.epoch = retiree_rt->coverage_epoch() + 1;
    ret_roll.other = survivor;
    ret_roll.cutover = retiree_final;
    rollforward_[retiree] = std::move(ret_roll);
  }
  SliceRuntime::AbsorbSpec absorb;
  absorb.transition = t.report.id;
  absorb.retiree = retiree;
  absorb.cutover = survivor_cut;
  absorb.reply_to = control_endpoint_;
  survivor_rt->begin_absorb(std::move(absorb));
  SliceRuntime::FreezeSpec freeze;
  freeze.migration = t.report.id;
  freeze.catchup = retiree_final;
  freeze.dst_host = HostId{};
  freeze.reply_to = control_endpoint_;
  freeze.merge_capture = true;
  retiree_rt->request_freeze(std::move(freeze));
  t.set_merge_step(MergeStep::kDrainRetiree);
  fire_elastic_step(to_string(MergeStep::kDrainRetiree));
}

bool Engine::handle_transition_control(const net::Message* msg) {
  if (const auto* cap = dynamic_cast<const SplitStateMessage*>(msg)) {
    if (current_transition_ &&
        cap->transition == current_transition_->report.id &&
        current_transition_->report.kind == TransitionKind::kSplit &&
        current_transition_->split_step == SplitStep::kDrain) {
      TransitionTask& t = *current_transition_;
      t.report.moved = cap->moved;
      // The captured half becomes a synthetic checkpoint: the child
      // activates through the ordinary recovery path, channels starting
      // fresh at sequence 1 (empty watermarks ask for a full replay of the
      // post-cut-over traffic the logs / replica buffer hold).
      checkpoints_[t.report.child] =
          StoredCheckpoint{cap->state, {}, {}, {}, 0};
      t.set_split_step(SplitStep::kActivate);
      recover_slice(t.report.child, t.dst, [this, id = t.report.id] {
        if (current_transition_ && current_transition_->report.id == id) {
          finish_transition(true);
        }
      });
      fire_elastic_step(to_string(SplitStep::kActivate));
      return true;
    }
    // Duplicate from a re-driven parent leg (deterministic replay makes the
    // re-capture byte-identical): refresh the synthetic checkpoint unless
    // the child has checkpointed real progress since.
    if (auto roll = rollforward_.find(cap->parent);
        roll != rollforward_.end() &&
        roll->second.transition == cap->transition) {
      auto existing = checkpoints_.find(cap->child);
      if (existing == checkpoints_.end() ||
          existing->second.processed.empty()) {
        checkpoints_[cap->child] = StoredCheckpoint{cap->state, {}, {}, {}, 0};
      }
    }
    return true;
  }

  if (const auto* cap = dynamic_cast<const MergeStateMessage*>(msg)) {
    if (current_transition_ &&
        cap->transition == current_transition_->report.id &&
        current_transition_->report.kind == TransitionKind::kMerge &&
        current_transition_->merge_step == MergeStep::kDrainRetiree) {
      TransitionTask& t = *current_transition_;
      // The retiree's routable identity ends here: erase its directory
      // entry and checkpoint so no recovery sweep resurrects a zombie copy.
      directory_.erase(t.report.child);
      checkpoints_.erase(t.report.child);
      rollforward_.erase(t.report.child);
      pending_replays_.erase(t.report.child);
      if (auto roll = rollforward_.find(t.report.parent);
          roll != rollforward_.end() &&
          roll->second.transition == t.report.id) {
        roll->second.state = cap->state;
        roll->second.log = cap->log;
        roll->second.state_ready = true;
      }
      t.set_merge_step(MergeStep::kAbsorb);
      // Ship to the survivor's current primary. If the survivor is lost or
      // mid-recovery the request is dropped there — its recovery re-drives
      // the absorb from the RollForward stash instead.
      const auto loc = directory_.find(t.report.parent);
      if (loc != directory_.end() &&
          host_runtimes_.contains(loc->second.primary)) {
        auto req = std::make_shared<MergeAbsorbRequest>();
        req->transition = t.report.id;
        req->survivor = t.report.parent;
        req->retiree = t.report.child;
        req->state = cap->state;
        req->log = cap->log;
        req->reply_to = control_endpoint_;
        const std::size_t bytes =
            (cap->state ? cap->state->size() : 0) + 64 * cap->log.size() + 96;
        send_control(host_runtimes_.at(loc->second.primary)->endpoint(),
                     std::move(req), bytes);
      }
      fire_elastic_step(to_string(MergeStep::kAbsorb));
      return true;
    }
    return true;  // stale duplicate from a re-driven retiree leg
  }

  if (const auto* ack = dynamic_cast<const MergeAbsorbAck*>(msg)) {
    if (current_transition_ &&
        ack->transition == current_transition_->report.id &&
        current_transition_->report.kind == TransitionKind::kMerge &&
        current_transition_->merge_step == MergeStep::kAbsorb) {
      TransitionTask& t = *current_transition_;
      t.set_merge_step(MergeStep::kTeardown);
      const bool retiree_live = host_runtimes_.contains(t.retiree_host);
      if (retiree_live) {
        auto req = std::make_shared<TeardownRequest>();
        req->migration = t.report.id;
        req->slice = t.report.child;
        req->reply_to = control_endpoint_;
        send_control(host_runtimes_.at(t.retiree_host)->endpoint(),
                     std::move(req));
      }
      if (fire_elastic_step(to_string(MergeStep::kTeardown)) &&
          !retiree_live) {
        finish_transition(true);
      }
    }
    return true;  // stale duplicate from a re-driven survivor leg
  }

  if (!current_transition_) return false;
  TransitionTask& t = *current_transition_;

  if (const auto* ack = dynamic_cast<const CreateReplicaAck*>(msg)) {
    if (ack->migration != t.report.id) return false;
    if (t.report.kind == TransitionKind::kSplit &&
        t.split_step == SplitStep::kCreateChild) {
      t.create_acked = true;
      if (t.pending_update_hosts.empty()) split_cutover();
    }
    return true;
  }
  if (const auto* ack = dynamic_cast<const DirectoryUpdateAck*>(msg)) {
    if (ack->migration != t.report.id) return false;
    if (t.report.kind == TransitionKind::kSplit &&
        t.split_step == SplitStep::kCreateChild) {
      t.pending_update_hosts.erase(ack->from_host);
      if (t.create_acked && t.pending_update_hosts.empty()) split_cutover();
    }
    return true;
  }
  if (const auto* ack = dynamic_cast<const TeardownAck*>(msg)) {
    if (ack->migration != t.report.id) return false;
    if (t.report.kind == TransitionKind::kMerge &&
        t.merge_step == MergeStep::kTeardown) {
      finish_transition(true);
    }
    return true;
  }
  if (const auto* ack = dynamic_cast<const AbortReplicaAck*>(msg)) {
    if (ack->migration != t.report.id) return false;
    if (t.report.kind == TransitionKind::kSplit &&
        t.split_step == SplitStep::kAborting) {
      finish_transition(false);
    }
    return true;
  }
  return false;
}

void Engine::handle_transition_host_failure(HostId host) {
  if (!current_transition_) return;
  TransitionTask& t = *current_transition_;

  if (t.report.kind == TransitionKind::kMerge) {
    // Every merge leg re-drives through RollForward after the lost slice
    // recovers; the only coordinator action is resolving a teardown aimed
    // at a host that just died.
    if (t.merge_step == MergeStep::kTeardown && host == t.retiree_host) {
      finish_transition(true);
    }
    return;
  }

  if (host == t.dst) {
    switch (t.split_step) {
      case SplitStep::kCreateChild:
        // Nothing routed to the child yet and its replica died with the
        // host: abort the split outright.
        t.set_split_step(SplitStep::kAborting);
        directory_.erase(t.report.child);
        mutable_static_->slice_infos.erase(t.report.child);
        finish_transition(false);
        return;
      case SplitStep::kCutOver:
        return;  // transient within one callback; never observed here
      case SplitStep::kDrain:
      case SplitStep::kActivate: {
        // Post-cut-over the split can only roll forward: re-home the child
        // on a deterministic replacement (smallest live host). Events
        // routed there before the restore lands are dropped-but-logged
        // upstream and replayed after activation.
        const std::vector<HostId> live = hosts();
        if (live.empty()) return;  // no cluster left; nothing to drive
        t.dst = live.front();
        directory_[t.report.child] = SliceLocation{t.dst, HostId{}};
        broadcast_location(t.report.child, t.dst);
        if (t.split_step == SplitStep::kActivate) {
          // The restore went to the dead host; re-issue it.
          recover_slice(t.report.child, t.dst, [this, id = t.report.id] {
            if (current_transition_ && current_transition_->report.id == id) {
              finish_transition(true);
            }
          });
        }
        return;
      }
      case SplitStep::kAborting:
        // The abort-replica ack died with the host.
        finish_transition(false);
        return;
    }
    return;
  }

  const auto parent_loc = directory_.find(t.report.parent);
  if (parent_loc != directory_.end() && parent_loc->second.primary == host) {
    switch (t.split_step) {
      case SplitStep::kCreateChild: {
        // Parent lost pre-cut-over: abort, tearing the child replica down.
        t.set_split_step(SplitStep::kAborting);
        auto req = std::make_shared<AbortReplicaRequest>();
        req->migration = t.report.id;
        req->slice = t.report.child;
        req->reply_to = control_endpoint_;
        send_control(host_runtimes_.at(t.dst)->endpoint(), std::move(req));
        return;
      }
      case SplitStep::kCutOver:
      case SplitStep::kDrain:
      case SplitStep::kActivate:
        // Post-cut-over the parent's leg re-drives through RollForward
        // after recovery; the coordinator keeps waiting.
        return;
      case SplitStep::kAborting:
        return;  // abort ack comes from dst, unaffected
    }
    return;
  }

  // A third host died: strike it from the outstanding directory-ack set.
  if (t.split_step == SplitStep::kCreateChild) {
    t.pending_update_hosts.erase(host);
    if (t.create_acked && t.pending_update_hosts.empty()) split_cutover();
  }
}

void Engine::redrive_rollforward(SliceId slice) {
  auto it = rollforward_.find(slice);
  if (it == rollforward_.end()) return;
  RollForward& roll = it->second;
  SliceRuntime* rt = slice_runtime(slice);
  if (rt == nullptr) return;
  switch (roll.role) {
    case RollForward::Role::kSplitParent: {
      SliceRuntime::SplitSpec spec;
      spec.transition = roll.transition;
      spec.child = roll.other;
      spec.child_cov = roll.cov;
      spec.cutover = roll.cutover;
      spec.reply_to = control_endpoint_;
      rt->begin_split(std::move(spec));
      return;
    }
    case RollForward::Role::kMergeSurvivor: {
      SliceRuntime::AbsorbSpec spec;
      spec.transition = roll.transition;
      spec.retiree = roll.other;
      spec.cutover = roll.cutover;
      spec.reply_to = control_endpoint_;
      rt->begin_absorb(std::move(spec));
      if (roll.state_ready) rt->deliver_absorb_state(roll.state, roll.log);
      return;
    }
    case RollForward::Role::kMergeRetiree: {
      SliceRuntime::FreezeSpec spec;
      spec.migration = roll.transition;
      spec.catchup = roll.cutover;
      spec.dst_host = HostId{};
      spec.reply_to = control_endpoint_;
      spec.merge_capture = true;
      rt->request_freeze(std::move(spec));
      return;
    }
  }
}

void Engine::broadcast_location(SliceId slice, HostId host) {
  // Sorted: send order serializes on the manager NIC and decides per-host
  // delivery times.
  for (const HostId id : sorted_keys(host_runtimes_)) {
    auto update = std::make_shared<DirectoryUpdateMessage>();
    update->migration = MigrationId{};
    update->slice = slice;
    update->host = host;
    update->reply_to = net::Endpoint{};  // no ack needed
    send_control(host_runtimes_.at(id)->endpoint(), std::move(update));
  }
}

void Engine::after_directory_acks() {
  MigrationTask& t = *current_migration_;
  if (!host_runtimes_.contains(t.report.src)) {
    // The source died after activation: nothing left to tear down, the
    // slice is safe on the destination.
    finish_migration(MigrationOutcome::kCompleted);
    return;
  }
  t.set_step(MigrationTask::Step::kTeardown);
  migration_step([this] {
    MigrationTask& t = *current_migration_;
    auto req = std::make_shared<TeardownRequest>();
    req->migration = t.report.id;
    req->slice = t.report.slice;
    req->reply_to = control_endpoint_;
    send_control(host_runtimes_.at(t.report.src)->endpoint(), std::move(req));
  });
  fire_migration_step();
}

void Engine::handle_host_failure(HostId host) {
  if (!current_migration_) return;
  MigrationTask& t = *current_migration_;
  using Step = MigrationTask::Step;
  const SliceId slice = t.report.slice;

  if (host == t.report.dst) {
    switch (t.step) {
      case Step::kCreateReplica:
        // No duplication started yet; the replica died with the host.
        finish_migration(MigrationOutcome::kAbortedDstFailed);
        return;
      case Step::kDuplication:
      case Step::kPrecopy:
        // Upstreams may already duplicate to the dead host: stop them. The
        // source never stopped serving (pre-copy rounds run while active),
        // so nothing else needs repair.
        directory_[slice].shadow = HostId{};
        directory_[slice].redirect = false;
        broadcast_location(slice, t.report.src);
        finish_migration(MigrationOutcome::kAbortedDstFailed);
        return;
      case Step::kPark:
      case Step::kTransfer: {
        // The freeze may or may not have reached the source. Ask it to
        // resume the slice; if the state already shipped (to a dead host),
        // the source reports the slice unusable and it goes to recovery.
        t.set_step(Step::kAborting);
        t.abort_peer = t.report.src;
        t.abort_outcome = MigrationOutcome::kAbortedDstFailed;
        auto req = std::make_shared<AbortMigrationRequest>();
        req->migration = t.report.id;
        req->slice = slice;
        req->reply_to = control_endpoint_;
        // Both new strategies freeze the source only at their final
        // stop-and-copy point, so a frozen source is exact at its freeze
        // watermark: it may thaw in place and have the missing suffix
        // replayed from the upstream logs, instead of being evicted into
        // recovery. Buffered-replay keeps its original abort semantics.
        req->thaw_frozen =
            t.strategy->kind() != MigrationStrategyKind::kBufferedReplay;
        send_control(host_runtimes_.at(t.report.src)->endpoint(),
                     std::move(req));
        return;
      }
      case Step::kDirectoryUpdate:
        // Already activated on dst: the move completed, then the host
        // died. The lost slice is recovery's problem; converge survivors.
        t.pending_update_hosts.erase(host);
        if (t.pending_update_hosts.empty()) after_directory_acks();
        return;
      case Step::kTeardown:
        return;  // teardown targets the source; unaffected
      case Step::kAborting:
        if (host == t.abort_peer) finish_migration(t.abort_outcome);
        return;
    }
    return;
  }

  if (host == t.report.src) {
    switch (t.step) {
      case Step::kCreateReplica:
      case Step::kDuplication:
      case Step::kPark:
      case Step::kPrecopy:
      case Step::kTransfer: {
        // The slice was lost with the source. The replica on dst must be
        // torn down — unless the state transfer raced ahead and it already
        // activated, in which case the migration completed. Ask dst.
        directory_[slice].shadow = HostId{};
        directory_[slice].redirect = false;
        t.set_step(Step::kAborting);
        t.abort_peer = t.report.dst;
        t.abort_outcome = MigrationOutcome::kAbortedSrcFailed;
        auto req = std::make_shared<AbortReplicaRequest>();
        req->migration = t.report.id;
        req->slice = slice;
        req->reply_to = control_endpoint_;
        send_control(host_runtimes_.at(t.report.dst)->endpoint(),
                     std::move(req));
        return;
      }
      case Step::kDirectoryUpdate:
        t.pending_update_hosts.erase(host);
        if (t.pending_update_hosts.empty()) after_directory_acks();
        return;
      case Step::kTeardown:
        // The dead source was the last protocol participant.
        finish_migration(MigrationOutcome::kCompleted);
        return;
      case Step::kAborting:
        if (host == t.abort_peer) finish_migration(t.abort_outcome);
        return;
    }
    return;
  }

  // A third host died: strike it from any outstanding ack set so the
  // protocol does not wait for a host that will never answer.
  if (t.step == Step::kDuplication || t.step == Step::kPark) {
    for (auto it = t.pending_dup_slices.begin();
         it != t.pending_dup_slices.end();) {
      if (directory_.at(*it).primary == host) {
        // The upstream died with its host; its channel gets no catch-up
        // entry. Once recovered, its replayed suffix reaches the replica
        // through shadow duplication (or the park redirect) like any live
        // traffic.
        it = t.pending_dup_slices.erase(it);
      } else {
        ++it;
      }
    }
    if (t.pending_dup_slices.empty()) advance_after_duplication();
  } else if (t.step == Step::kDirectoryUpdate) {
    t.pending_update_hosts.erase(host);
    if (t.pending_update_hosts.empty()) after_directory_acks();
  }
}

void Engine::send_freeze() {
  MigrationTask& t = *current_migration_;
  auto req = std::make_shared<FreezeRequest>();
  req->migration = t.report.id;
  req->slice = t.report.slice;
  req->catchup = t.catchup;
  req->dst_host = t.report.dst;
  req->reply_to = control_endpoint_;
  // After pre-copy rounds the replica holds a patched baseline image; the
  // final stop-and-copy ships only the dirty pages against it.
  req->delta = t.strategy->delta_transfer() && t.round > 0;
  send_control(host_runtimes_.at(t.report.src)->endpoint(), std::move(req));
}

void Engine::repair_redirected_channels(
    SliceId slice, const std::vector<std::pair<SliceId, SeqNo>>& processed) {
  // Same replay machinery recovery uses: every host re-sends its logged
  // suffix above the source's per-channel watermarks (channel sequence
  // numbers deduplicate anything the source did see). Ordered after the
  // broadcast_location in the caller, so per-destination FIFO applies the
  // location fix before any replayed event arrives.
  auto replay = std::make_shared<ReplayRequest>();
  replay->slice = slice;
  replay->processed = processed;
  // Sorted: send order serializes on the manager NIC.
  for (const HostId id : sorted_keys(host_runtimes_)) {
    send_control(host_runtimes_.at(id)->endpoint(), replay);
  }
  // External injections: re-deliver the logged suffix directly.
  SeqNo external_watermark = 0;
  for (const auto& [upstream, watermark] : processed) {
    if (upstream == kExternalChannel) external_watermark = watermark;
  }
  const auto log = inject_log_.find(slice);
  if (log == inject_log_.end()) return;
  const auto loc = directory_.find(slice);
  if (loc == directory_.end()) return;
  const auto host_it = host_runtimes_.find(loc->second.primary);
  if (host_it == host_runtimes_.end()) return;
  for (const WireEvent& event : log->second) {
    if (event.seq > external_watermark) {
      host_it->second->deliver_external(event);
    }
  }
}

void Engine::step_after_tick(std::function<void()> fn) {
  const auto tick = static_cast<std::uint64_t>(config_.control_tick.count());
  const auto delay =
      tick == 0 ? SimDuration::zero()
                : micros(static_cast<std::int64_t>(rng_.next_below(tick)));
  simulator_.schedule(delay, std::move(fn));
}

void Engine::migration_step(std::function<void()> fn) {
  // A migration can be aborted (and a successor started) while a scheduled
  // step is in flight: the guard keeps a stale step from firing into the
  // wrong migration, and from racing an abort handshake (e.g. sending the
  // freeze after the source was already told to resume the slice).
  const MigrationId id = current_migration_->report.id;
  step_after_tick([this, id, fn = std::move(fn)] {
    if (current_migration_ && current_migration_->report.id == id &&
        current_migration_->step != MigrationTask::Step::kAborting) {
      fn();
    }
  });
}

void Engine::send_control(net::Endpoint to, net::MessagePtr msg,
                          std::size_t bytes) {
  if (control_channel_) {
    control_channel_->send(to, std::move(msg), bytes);
  } else {
    network_.send(control_endpoint_, to, std::move(msg), bytes);
  }
}

void Engine::notify_control_give_up(net::Endpoint peer) {
  HostId host{};
  if (peer == control_endpoint_) {
    host = manager_host_;
  } else if (auto it = control_peers_.find(peer); it != control_peers_.end()) {
    host = it->second;
  }
  if (host.valid() && control_unreachable_) {
    control_unreachable_(host);
  }
}

net::ReliableStats Engine::reliable_stats() const {
  net::ReliableStats total;
  auto add = [&total](const net::ReliableStats& s) {
    total.data_sent += s.data_sent;
    total.retransmits += s.retransmits;
    total.acks_sent += s.acks_sent;
    total.delivered += s.delivered;
    total.duplicates_dropped += s.duplicates_dropped;
    total.corrupt_dropped += s.corrupt_dropped;
    total.give_ups += s.give_ups;
  };
  if (control_channel_) add(control_channel_->stats());
  // lint:allow(unordered-iteration): commutative sum, order-free
  for (const auto& [id, runtime] : host_runtimes_) {
    if (runtime->control_channel()) add(runtime->control_channel()->stats());
  }
  return total;
}

std::vector<SliceId> Engine::upstream_slices(SliceId slice) const {
  const auto& op = static_->op_of(slice);
  std::vector<SliceId> out;
  for (std::uint32_t up : op.upstream_ops) {
    const auto& up_op = static_->operators.at(up);
    out.insert(out.end(), up_op.slices.begin(), up_op.slices.end());
  }
  return out;
}

std::vector<SliceId> Engine::downstream_slices(SliceId slice) const {
  const std::uint32_t op_index = static_->info_of(slice).op_index;
  std::vector<SliceId> out;
  for (const auto& op : static_->operators) {
    if (std::find(op.upstream_ops.begin(), op.upstream_ops.end(), op_index) ==
        op.upstream_ops.end()) {
      continue;
    }
    out.insert(out.end(), op.slices.begin(), op.slices.end());
  }
  return out;
}

void Engine::register_recovery_rebases(SliceId slice) {
  // Single-input slices replay their one channel in the original order, so
  // the regenerated output keeps the original numbering and downstream
  // dedup stays valid; only multi-input interleavings renumber.
  const std::size_t input_channels =
      upstream_slices(slice).size() +
      (next_inject_seq_.contains(slice) ? 1 : 0);
  if (input_channels <= 1) return;
  std::vector<std::pair<SliceId, SeqNo>> out_bases;
  if (auto cp = checkpoints_.find(slice); cp != checkpoints_.end()) {
    out_bases = cp->second.out_seqs;
  }
  // A consumer absent from out_bases never received anything pre-cut and
  // rewinds to 1, mirroring handle_directory_update's default.
  auto& rebases = recovery_rebases_[slice];
  rebases.clear();
  for (const SliceId down : downstream_slices(slice)) {
    SeqNo base = 1;
    for (const auto& [target, next] : out_bases) {
      if (target == down) base = next;
    }
    rebases[down] = base;
  }
}

std::vector<std::pair<SliceId, SeqNo>> Engine::clamp_to_rebases(
    SliceId slice, std::vector<std::pair<SliceId, SeqNo>> processed) const {
  for (auto& [upstream, watermark] : processed) {
    const auto rebase = recovery_rebases_.find(upstream);
    if (rebase == recovery_rebases_.end()) continue;
    const auto entry = rebase->second.find(slice);
    if (entry == rebase->second.end()) continue;
    // The upstream regenerated its stream from `base`; a restored watermark
    // at or past it counts the old numbering and must rewind so the
    // regenerated suffix is replayed and accepted. Content the old
    // watermark did cover is then reprocessed — absorbed downstream, which
    // is at-least-once above the EP boundary.
    if (watermark >= entry->second) watermark = entry->second - 1;
  }
  return processed;
}

void Engine::on_control(const net::Delivery& delivery) {
  const net::Message* msg = delivery.message.get();

  // ---- passive-replication traffic (independent of migrations) ----
  if (const auto* checkpoint = dynamic_cast<const CheckpointMessage*>(msg)) {
    checkpoints_[checkpoint->slice] =
        StoredCheckpoint{checkpoint->state, checkpoint->processed,
                         checkpoint->out_seqs, checkpoint->log,
                         checkpoint->coverage_epoch};
    // A checkpoint at or past a pending split/merge capture's coverage
    // epoch proves that capture durable: the roll-forward record is spent,
    // and a transition deferred behind it may start.
    if (auto roll = rollforward_.find(checkpoint->slice);
        roll != rollforward_.end() &&
        checkpoint->coverage_epoch >= roll->second.epoch) {
      rollforward_.erase(roll);
      start_next_transition();
    }
    // A checkpoint whose watermark reaches a recovered upstream's
    // regenerated base proves this consumer advanced in the new numbering;
    // the rebase entry is spent. (Narrow known race: a pre-crash checkpoint
    // still in flight from a now-dead consumer can spend the entry with an
    // old-numbering watermark — it is also the restore point recovery will
    // resume from, so the window is a single checkpoint interval.)
    for (const auto& [upstream, watermark] : checkpoint->processed) {
      const auto rebase = recovery_rebases_.find(upstream);
      if (rebase == recovery_rebases_.end()) continue;
      const auto entry = rebase->second.find(checkpoint->slice);
      if (entry != rebase->second.end() && watermark >= entry->second) {
        rebase->second.erase(entry);
        if (rebase->second.empty()) recovery_rebases_.erase(rebase);
      }
    }
    // Let upstream logs (and the external injection log) truncate.
    auto notice = std::make_shared<CheckpointNoticeMessage>();
    notice->slice = checkpoint->slice;
    notice->processed = checkpoint->processed;
    for (const auto& [upstream, watermark] : checkpoint->processed) {
      if (upstream == kExternalChannel) {
        auto log = inject_log_.find(checkpoint->slice);
        if (log != inject_log_.end()) {
          auto& events = log->second;
          while (!events.empty() && events.front().seq <= watermark) {
            events.pop_front();
          }
        }
      }
    }
    // Sorted: broadcast order serializes on the manager NIC.
    for (const HostId id : sorted_keys(host_runtimes_)) {
      send_control(host_runtimes_.at(id)->endpoint(), notice);
    }
    return;
  }
  if (const auto* ack = dynamic_cast<const ActivatedAck*>(msg);
      ack != nullptr && !ack->migration.valid()) {
    // Recovery activation (not a migration): converge the directory,
    // replay upstream logs and the external injection log.
    auto recovery = recoveries_.find(ack->slice);
    if (recovery == recoveries_.end()) return;
    if (!directory_.contains(ack->slice)) {
      // The slice was merged away while this recovery was in flight: the
      // activated copy is a harmless idle zombie (nothing routes to it).
      auto orphaned = std::move(recovery->second);
      recoveries_.erase(recovery);
      if (orphaned) orphaned();
      return;
    }
    const HostId dst = directory_.at(ack->slice).primary;
    // A slice without a checkpoint bootstraps: zero watermarks ask the
    // (untruncated) logs for a full replay, and empty output bases make
    // every downstream rewind to sequence 1.
    std::vector<std::pair<SliceId, SeqNo>> processed;
    std::vector<std::pair<SliceId, SeqNo>> out_bases;
    if (auto cp = checkpoints_.find(ack->slice); cp != checkpoints_.end()) {
      processed = cp->second.processed;
      out_bases = cp->second.out_seqs;
    }
    // Co-recovery: channel watermarks counting an already-regenerated
    // upstream stream rewind to its new base (matches what the restore
    // message carried, so the activated channels accept the replay).
    processed = clamp_to_rebases(ack->slice, std::move(processed));
    // With a single input channel the replay re-creates the original event
    // order exactly, so the regenerated output matches the original
    // sequence numbering and downstream dedup stays valid. Only multi-input
    // slices can interleave replayed channels differently and need their
    // downstream channels rewound to the restored bases.
    const std::size_t input_channels =
        upstream_slices(ack->slice).size() +
        (next_inject_seq_.contains(ack->slice) ? 1 : 0);
    // This recovery renumbers a multi-input slice's output (fresh
    // interleaving from the checkpoint cut). Refresh the per-consumer
    // regenerated bases (first recorded at fail_host time) so consumers
    // that recover later rewind their restored watermarks to them.
    register_recovery_rebases(ack->slice);
    // Sorted: broadcast order serializes on the manager NIC and decides
    // when each survivor rewinds / starts replaying.
    for (const HostId id : sorted_keys(host_runtimes_)) {
      auto update = std::make_shared<DirectoryUpdateMessage>();
      update->migration = MigrationId{};
      update->slice = ack->slice;
      update->host = dst;
      update->reply_to = net::Endpoint{};  // no ack needed
      update->reset_channels = input_channels > 1;
      update->out_bases = out_bases;
      send_control(host_runtimes_.at(id)->endpoint(), update);
    }
    auto replay = std::make_shared<ReplayRequest>();
    replay->slice = ack->slice;
    replay->processed = processed;
    for (const HostId id : sorted_keys(host_runtimes_)) {
      send_control(host_runtimes_.at(id)->endpoint(), replay);
    }
    // Co-recovery rendezvous: slices recovered before this one broadcast
    // their replay requests while this slice was not live anywhere, so the
    // events only its (restored) log holds were never re-sent. Re-deliver
    // those requests to the new host; channel/handler deduplication
    // absorbs any redundancy.
    const auto dst_endpoint = host_runtimes_.at(dst)->endpoint();
    // Sorted: re-sent replay requests serialize on the manager NIC too.
    for (const SliceId other : sorted_keys(pending_replays_)) {
      if (other == ack->slice) continue;
      auto again = std::make_shared<ReplayRequest>();
      again->slice = other;
      again->processed = pending_replays_.at(other);
      send_control(dst_endpoint, again);
    }
    pending_replays_[ack->slice] = processed;
    // External injections: re-deliver the logged suffix directly.
    SeqNo external_watermark = 0;
    for (const auto& [upstream, watermark] : processed) {
      if (upstream == kExternalChannel) external_watermark = watermark;
    }
    auto log = inject_log_.find(ack->slice);
    if (log != inject_log_.end()) {
      auto dst_runtime = host_runtimes_.find(dst);
      for (const WireEvent& event : log->second) {
        if (event.seq > external_watermark &&
            dst_runtime != host_runtimes_.end()) {
          dst_runtime->second->deliver_external(event);
        }
      }
    }
    // A pending split/merge capture on this slice replays now, from the
    // freshly restored state — deterministically identical to the original.
    redrive_rollforward(ack->slice);
    auto done = std::move(recovery->second);
    recoveries_.erase(recovery);
    if (done) done();
    return;
  }

  // ---- split / merge traffic (ids never clash with migrations: both
  // families draw from the same counter) ----
  if (handle_transition_control(msg)) return;

  if (!current_migration_) {
    ESH_WARN << "Engine: control message with no migration in flight";
    return;
  }
  MigrationTask& task = *current_migration_;
  using Step = MigrationTask::Step;

  if (const auto* ack = dynamic_cast<const CreateReplicaAck*>(msg)) {
    if (ack->migration != task.report.id ||
        task.step != Step::kCreateReplica) {
      return;
    }
    // Duplication (or, for a redirecting strategy, the park hand-off) of the
    // external injection channel starts now: record the shadow
    // (Engine::inject consults it) and the catch-up point.
    directory_[task.report.slice].shadow = task.report.dst;
    directory_[task.report.slice].redirect =
        task.strategy->redirect_channels();
    task.catchup.clear();
    const auto inject_it = next_inject_seq_.find(task.report.slice);
    task.catchup.emplace_back(
        kExternalChannel,
        inject_it == next_inject_seq_.end() ? SeqNo{1} : inject_it->second);

    task.pending_dup_slices.clear();
    std::set<HostId> hosts;
    for (SliceId up : upstream_slices(task.report.slice)) {
      const HostId up_host = directory_.at(up).primary;
      // A lost upstream (host dead, recovery pending) cannot ack; once it
      // recovers, its replayed suffix reaches the replica through shadow
      // duplication like any live traffic.
      if (!host_runtimes_.contains(up_host)) continue;
      task.pending_dup_slices.insert(up);
      hosts.insert(up_host);
    }
    if (task.pending_dup_slices.empty()) {
      // No live DAG channels (source operator): pre-copy or freeze directly.
      advance_after_duplication();
      return;
    }
    task.set_step(task.strategy->redirect_channels() ? Step::kPark
                                                     : Step::kDuplication);
    // One request per host holding at least one upstream slice.
    migration_step([this, hosts] {
      MigrationTask& t = *current_migration_;
      for (HostId host : hosts) {
        if (!host_runtimes_.contains(host)) continue;  // died meanwhile
        auto req = std::make_shared<StartDuplicationRequest>();
        req->migration = t.report.id;
        req->slice = t.report.slice;
        req->shadow_host = t.report.dst;
        req->redirect = t.strategy->redirect_channels();
        req->reply_to = control_endpoint_;
        send_control(host_runtimes_.at(host)->endpoint(), std::move(req));
      }
    });
    fire_migration_step();
    return;
  }

  if (const auto* ack = dynamic_cast<const StartDuplicationAck*>(msg)) {
    if (ack->migration != task.report.id ||
        (task.step != Step::kDuplication && task.step != Step::kPark)) {
      return;
    }
    if (task.pending_dup_slices.erase(ack->upstream_slice) == 0) return;
    task.catchup.emplace_back(ack->upstream_slice, ack->next_seq);
    if (!task.pending_dup_slices.empty()) return;
    advance_after_duplication();
    return;
  }

  if (const auto* ack = dynamic_cast<const PrecopyAck*>(msg)) {
    if (ack->migration != task.report.id || task.step != Step::kPrecopy ||
        ack->round != task.round) {
      return;
    }
    task.precopy_bytes += ack->bytes;
    // Another round while the budget lasts and the state is still dirtying;
    // a zero-delta round means the next diff would be empty too, so cut to
    // the final stop-and-copy early.
    bool more =
        task.round < task.strategy->precopy_rounds(config_) && ack->bytes > 0;
    if (testing_force_extra_precopy_round && !more) {
      // Seeded fault: issue one round past the bound; the
      // precopy-rounds-bounded contract in start_precopy_round must trip.
      testing_force_extra_precopy_round = false;
      more = true;
    }
    if (more) {
      task.set_step(Step::kPrecopy);  // self-edge: next round
      start_precopy_round();
    } else {
      task.set_step(Step::kTransfer);
      migration_step([this] { send_freeze(); });
      fire_migration_step();
    }
    return;
  }

  if (const auto* ack = dynamic_cast<const ActivatedAck*>(msg)) {
    if (ack->migration != task.report.id) return;
    // Ignore an activation that raced a destination crash: the activated
    // copy died with the host and the slice goes through the abort path.
    if (!host_runtimes_.contains(task.report.dst)) return;
    if (task.step != Step::kTransfer && task.step != Step::kAborting) return;
    task.report.frozen = ack->frozen_at;
    task.report.activated = ack->activated_at;
    task.report.state_bytes = ack->state_bytes;
    task.report.transfer_bytes = ack->transfer_bytes;
#if ESH_INVARIANTS_ENABLED
    if (task.strategy->redirect_channels()) {
      // Stop-and-restart: the park drained the source to a freeze before the
      // state ever shipped, so the replica going live with the source still
      // active would mean two primaries serving the slice at once.
      SliceRuntime* src_rt = nullptr;
      if (auto src_it = host_runtimes_.find(task.report.src);
          src_it != host_runtimes_.end()) {
        src_rt = src_it->second->slice(task.report.slice);
      }
      if (testing_force_src_active_on_activate && src_rt != nullptr) {
        // Seeded fault: resurrect the source right under the check.
        testing_force_src_active_on_activate = false;
        src_rt->testing_force_active();
      }
      ESH_INVARIANT("engine", "stop-restart-no-dual-active",
                    src_rt == nullptr ||
                        src_rt->state() != SliceRuntime::State::kActive,
                    ::esh::contracts::Detail{}
                        .slice(task.report.slice)
                        .expected("source frozen/retired at activation")
                        .actual(src_rt != nullptr ? to_string(src_rt->state())
                                                  : "gone")
                        .note("migration " +
                              std::to_string(task.report.id.value())));
    }
#endif
    directory_[task.report.slice] =
        SliceLocation{task.report.dst, HostId{}};
    task.set_step(Step::kDirectoryUpdate);
    task.pending_update_hosts.clear();
    // lint:allow(unordered-iteration): fills a std::set, order-free
    for (const auto& [id, runtime] : host_runtimes_) {
      task.pending_update_hosts.insert(id);
    }
    migration_step([this] {
      MigrationTask& t = *current_migration_;
      // Sorted: update send order serializes on the manager NIC.
      for (const HostId id : sorted_keys(host_runtimes_)) {
        auto update = std::make_shared<DirectoryUpdateMessage>();
        update->migration = t.report.id;
        update->slice = t.report.slice;
        update->host = t.report.dst;
        update->reply_to = control_endpoint_;
        send_control(host_runtimes_.at(id)->endpoint(), std::move(update));
      }
    });
    fire_migration_step();
    return;
  }

  if (const auto* ack = dynamic_cast<const DirectoryUpdateAck*>(msg)) {
    if (ack->migration != task.report.id ||
        task.step != Step::kDirectoryUpdate) {
      return;
    }
    task.pending_update_hosts.erase(ack->from_host);
    if (task.pending_update_hosts.empty()) after_directory_acks();
    return;
  }

  if (const auto* ack = dynamic_cast<const TeardownAck*>(msg)) {
    if (ack->migration != task.report.id || task.step != Step::kTeardown) {
      return;
    }
    finish_migration(MigrationOutcome::kCompleted);
    return;
  }

  if (const auto* ack = dynamic_cast<const AbortMigrationAck*>(msg)) {
    if (ack->migration != task.report.id || task.step != Step::kAborting) {
      return;
    }
    // The source resolved the abort: either the slice resumed in place, or
    // its frozen state shipped to the dead destination and it needs
    // recovery. Either way, stop any lingering duplication.
    directory_[task.report.slice].shadow = HostId{};
    directory_[task.report.slice].redirect = false;
    broadcast_location(task.report.slice,
                       directory_.at(task.report.slice).primary);
    if (ack->resumed && (task.strategy->redirect_channels() || ack->thawed)) {
      // Stop-and-restart: everything redirected since the park went only to
      // the now-dead replica, so the resumed source needs the suffix replayed
      // whether or not it reached its freeze. A thawed pre-copy source needs
      // the same replay for the events dropped during its final freeze.
      // Either way the upstream logs re-send above the source's watermarks.
      repair_redirected_channels(task.report.slice, ack->processed);
    }
    if (!ack->resumed) {
      ESH_WARN << "Engine: migration abort lost slice "
               << task.report.slice.value() << " (state shipped to dead host)";
    }
    finish_migration(task.abort_outcome);
    return;
  }

  if (const auto* ack = dynamic_cast<const AbortReplicaAck*>(msg)) {
    if (ack->migration != task.report.id || task.step != Step::kAborting) {
      return;
    }
    if (ack->was_active) {
      // The state transfer raced the abort and the replica went live: the
      // migration actually completed despite the source's death.
      directory_[task.report.slice] =
          SliceLocation{task.report.dst, HostId{}};
      broadcast_location(task.report.slice, task.report.dst);
      finish_migration(MigrationOutcome::kCompleted);
      return;
    }
    directory_[task.report.slice].shadow = HostId{};
    directory_[task.report.slice].redirect = false;
    broadcast_location(task.report.slice,
                       directory_.at(task.report.slice).primary);
    finish_migration(task.abort_outcome);
    return;
  }

  ESH_WARN << "Engine: unrecognized control message";
}

}  // namespace esh::engine
