// Per-host runtime: owns the operator slices placed on one host, moves
// events between the network and the host CPU scheduler, and executes the
// host-side legs of the migration protocol (replica buffering, catch-up
// freeze, state restore).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/host.hpp"
#include "cluster/probes.hpp"
#include "common/contracts.hpp"
#include "common/keyspace.hpp"
#include "common/rng.hpp"
#include "engine/event.hpp"
#include "engine/handler.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "sim/simulator.hpp"

namespace esh::engine {

class Engine;
class HostRuntime;

// Immutable deployment-wide configuration: operators, slice identities and
// DAG shape. Shared by every host (the paper's "static configuration").
struct StaticConfig {
  struct OperatorInfo {
    OperatorId id;
    std::string name;
    std::vector<SliceId> slices;
    // Key coverage of each slice, parallel to `slices`. Deploy-time slices
    // start with modulo coverage {base = N, bucket = i, depth = 0}; a split
    // refines one entry by a bit and appends the child's, a merge erases
    // the retiree's and widens the survivor's. The entries always tile the
    // key space exactly (the key-coverage-complete invariant).
    std::vector<KeyCoverage> coverages;
    std::uint32_t coverage_base = 0;  // deploy-time slice count (fixed)
    // False until the operator's first split: hash routing keeps the
    // original modulo fast path — byte-for-byte identical behavior to the
    // pre-elasticity engine — for never-split operators.
    bool refined = false;
    HandlerFactory factory;
    std::vector<std::uint32_t> upstream_ops;  // indices into `operators`

    // Hash-routing target for `key` under the current coverage set.
    [[nodiscard]] SliceId route(std::uint64_t key) const;
  };
  struct SliceInfo {
    std::uint32_t op_index = 0;
    std::uint32_t slice_index = 0;
  };

  std::vector<OperatorInfo> operators;
  std::unordered_map<std::string, std::uint32_t> op_by_name;
  std::unordered_map<SliceId, SliceInfo> slice_infos;

  [[nodiscard]] const OperatorInfo& op_of(SliceId id) const;
  [[nodiscard]] const SliceInfo& info_of(SliceId id) const;
  [[nodiscard]] std::uint32_t index_of(std::string_view name) const;
};

// Where a slice lives right now, from one host's point of view. While a
// migration's duplication phase is active the shadow host receives a copy
// of every event; in park mode (stop-and-restart) it receives the events
// *instead of* the primary, which drains to a natural freeze.
struct SliceLocation {
  HostId primary;
  HostId shadow;  // invalid when no duplication is active
  bool redirect = false;  // park mode: shadow replaces primary as receiver
};

// One operator slice instance on a host.
class SliceRuntime final : public Context {
 public:
  enum class State {
    kActive,
    kInactiveReplica,  // buffering duplicated events, awaiting state
    kFreezePending,    // freeze requested, catching up
    kFrozen,           // state serialization / transfer in progress
    kRetired,
  };

  SliceRuntime(HostRuntime& host, SliceId id, std::unique_ptr<Handler> handler,
               State initial_state);
  ~SliceRuntime() override;

  [[nodiscard]] SliceId id() const { return id_; }
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] Handler& handler() { return *handler_; }
  [[nodiscard]] const Handler& handler() const { return *handler_; }

  // Data path -----------------------------------------------------------
  void on_wire_event(const WireEvent& event);
  void flush_outputs();

  // Migration (source-host side) -----------------------------------------
  struct FreezeSpec {
    MigrationId migration;
    std::vector<std::pair<SliceId, SeqNo>> catchup;
    HostId dst_host;
    net::Endpoint reply_to;
    // Merge retiree capture: instead of shipping a StateTransferMessage to
    // dst_host, the freeze job sends a MergeStateMessage (full state +
    // flattened backup log) to reply_to and the slice stays frozen until
    // the coordinator tears it down.
    bool merge_capture = false;
    // Incremental pre-copy final transfer: ship only the pages changed
    // since the last pre-copy round (the replica holds the baseline).
    bool delta = false;
  };
  void request_freeze(FreezeSpec spec);

  // One incremental pre-copy round (source side): serialize while active,
  // diff against the previous round's image, ship the dirty pages to
  // `dst_host`. Ignored when the slice is no longer active (abort raced).
  void run_precopy(MigrationId migration, std::size_t round, HostId dst_host,
                   net::Endpoint reply_to);
  // Replica side: patch the stored baseline with one round's pages and ack
  // the coordinator with the shipped byte count.
  void store_precopy(const PrecopyStateMessage& msg);

  // Migration abort: cancel a pending freeze and resume processing.
  // Returns false when the slice already froze (its state — with every
  // event since the freeze dropped locally — belongs to the replica now),
  // or is not in a resumable state; the caller must hand it to recovery.
  [[nodiscard]] bool unfreeze();

  // Stop-and-restart abort only: a fully-frozen PARKED source is not stale —
  // it froze at its exact catch-up point and every later event went to the
  // (now dead) replica, where the upstream logs can replay it. Returns the
  // slice to active processing; the caller replays the redirected suffix
  // above the slice's dispatch watermarks. Requires state() == kFrozen.
  void thaw();

  // Next sequence number this slice would assign on its channel to
  // `target` (the duplication start point reported to the coordinator).
  [[nodiscard]] SeqNo next_seq_for(SliceId target) const;

  // Passive replication (upstream backup) ---------------------------------
  // Drops logged events for `downstream` at or below `upto`.
  void truncate_log(SliceId downstream, SeqNo upto);
  // Re-sends logged events for `downstream` above `above` (post-recovery).
  void replay_log(SliceId downstream, SeqNo above);
  // A recovered upstream regenerates its output from `base` on, but the
  // regenerated sequence numbers may map content differently than the
  // original run. Rewind the channel to `base` and drop buffered originals
  // at or above it; the regenerated stream replaces them (content-level
  // duplicates are deduplicated by the handlers).
  void reset_channel(SliceId upstream, SeqNo base);
  // Serializes state and ships a checkpoint to the standby store.
  void checkpoint(net::Endpoint store);
  [[nodiscard]] std::size_t logged_events() const;

  // Migration (destination-host side) -------------------------------------
  void activate(const StateTransferMessage& msg);

  void retire();

  // Key-level split / merge (fine-grained elasticity) ----------------------
  struct SplitSpec {
    MigrationId transition;
    SliceId child;
    KeyCoverage child_cov;
    // Cut-over vector: per upstream channel, the first post-cut-over seq.
    std::vector<std::pair<SliceId, SeqNo>> cutover;
    net::Endpoint reply_to;
  };
  struct AbsorbSpec {
    MigrationId transition;
    SliceId retiree;
    std::vector<std::pair<SliceId, SeqNo>> cutover;
    net::Endpoint reply_to;
  };
  // Parent side of a split: hold every cut-over channel at its cut; once
  // all pre-cut-over events have been dispatched, split off the child's
  // half of the state in one write job and ship it to the coordinator.
  void begin_split(SplitSpec spec);
  // Survivor side of a merge: hold channels at the cut; absorb the
  // retiree's captured state once both the drain and the state are in.
  void begin_absorb(AbsorbSpec spec);
  void deliver_absorb_state(
      std::shared_ptr<const std::vector<std::byte>> state,
      std::vector<WireEvent> log);
  // Installs cut-over holds before activation (recovery of a slice that
  // died mid-transition): replayed events at or past a hold stay queued
  // until the re-driven capture or absorb releases them.
  void preinstall_holds(const std::vector<std::pair<SliceId, SeqNo>>& holds);
  // Bumped at every completed split capture / merge absorb; a checkpoint
  // at or past a pending transition's epoch proves its capture durable.
  [[nodiscard]] std::uint64_t coverage_epoch() const { return coverage_epoch_; }
  // Adopted-log maintenance (upstream backup inherited from merged-away
  // slices; channel identity is the retired origin, not this slice).
  void truncate_adopted(SliceId origin, SliceId downstream, SeqNo upto);
  void replay_adopted(SliceId origin, SliceId downstream, SeqNo above);

  // Introspection ---------------------------------------------------------
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }
  [[nodiscard]] std::uint64_t duplicates_dropped() const {
    return duplicates_dropped_;
  }
  [[nodiscard]] std::size_t net_bytes_sent() const { return net_bytes_sent_; }

  // Context ----------------------------------------------------------------
  void emit(std::string_view op, Routing routing, PayloadPtr payload) override;
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] std::size_t slice_index() const override;
  [[nodiscard]] std::size_t slice_count(std::string_view op) const override;
  [[nodiscard]] std::vector<std::uint32_t> fan_indices(
      std::string_view op) const override;
  [[nodiscard]] std::uint64_t routing_epoch() const override;

#if ESH_INVARIANTS_ENABLED
  // Seeded-fault seam for tests/test_contracts.cpp: breaks the channel's
  // expected/last_dispatched relation so the next delivery trips the
  // gap-freedom invariant. Compiled only in checked builds.
  void testing_corrupt_channel(SliceId from) {
    auto& channel = in_[from];
    channel.last_dispatched = channel.expected + 1;
  }

  // Seeded-fault seam: forces the lifecycle state to kActive behind the
  // set_state funnel, simulating a source that kept serving after its
  // checkpoint shipped — the stop-restart-no-dual-active invariant at the
  // coordinator's ActivatedAck site must catch it.
  void testing_force_active() { state_ = State::kActive; }
#endif

 private:
  struct ChannelIn {
    SeqNo expected = 1;               // next seq to deliver (active mode)
    std::map<SeqNo, PayloadPtr> pending;
    SeqNo last_dispatched = 0;        // timestamp-vector component
    // True between a recovery rewind (reset_channel lowering `expected`
    // below last_dispatched + 1) and the first post-rewind delivery; the
    // gap-freedom contract exempts exactly that window. Written in every
    // build so checked and default builds execute identical state updates.
    bool rewound = false;
    // Split/merge cut-over hold: while non-zero, events at or past it stay
    // pending — a split parent / merge survivor must not process any
    // post-cut-over event before its capture (resp. absorb) job runs.
    SeqNo hold = 0;
  };

  // Every lifecycle change funnels through here so the state-machine
  // contract sees it (illegal transitions throw in checked builds).
  void set_state(State next);

  void deliver_in_order(SliceId from, ChannelIn& channel);
  // Dispatches one in-order run of deliverable events, coalescing maximal
  // groups of consecutive batchable events (Handler::can_batch) so the
  // handler can precompute them together. Every event still gets its own
  // CPU job with its own cost and lock mode.
  void dispatch_run(std::vector<PayloadPtr> run);
  void dispatch(PayloadPtr payload);
  void process(PayloadPtr payload);
  void check_freeze();
  void do_freeze();
  // Split/merge drain gate: submits the capture (split) or absorb (merge)
  // write job once every cut-over channel has dispatched its full pre-cut
  // prefix (and, for a merge, the retiree's state has arrived).
  void check_transition_drain();
  void run_split_capture();
  void run_absorb();
  void release_holds();
  // Flattens out_log_ then adopted_log_ in deterministic order (checkpoint
  // and state-transfer wire format).
  void append_flattened_logs(std::vector<WireEvent>& out) const;
  void start_flush_timer();
  void start_checkpoint_timer();

  HostRuntime& host_;
  SliceId id_;
  std::unique_ptr<Handler> handler_;
  State state_;

  std::unordered_map<SliceId, ChannelIn> in_;
  // Replica buffering: raw per-channel maps (reordered lazily on activate).
  std::unordered_map<SliceId, std::map<SeqNo, PayloadPtr>> replica_buffer_;

  std::unordered_map<SliceId, SeqNo> next_out_seq_;
  std::unordered_map<SliceId, std::vector<WireEvent>> out_buffer_;
  std::size_t out_buffer_events_ = 0;
  // Upstream backup: emitted events retained until the downstream slice
  // checkpoints past them (only populated when checkpoints are enabled).
  bool logging_ = false;
  std::unordered_map<SliceId, std::deque<WireEvent>> out_log_;
  std::unique_ptr<sim::PeriodicTimer> checkpoint_timer_;

  std::optional<FreezeSpec> freeze_spec_;

  // Incremental pre-copy image. On the source: the serialized state as of
  // the last shipped round (the diff baseline). On the replica: the
  // accumulated baseline the final delta transfer patches. A slice is only
  // ever one side of a migration, so one buffer serves both roles.
  std::vector<std::byte> precopy_image_;

  // In-flight split/merge leg on this slice (at most one at a time; the
  // coordinator serializes elastic operations engine-wide).
  std::optional<SplitSpec> split_spec_;
  std::optional<AbsorbSpec> absorb_spec_;
  std::shared_ptr<const std::vector<std::byte>> absorb_state_;
  std::vector<WireEvent> absorb_log_;
  bool absorb_state_ready_ = false;
  bool capture_submitted_ = false;
  std::uint64_t coverage_epoch_ = 0;
  // Upstream-backup logs adopted from merged-away slices, keyed by the
  // retired origin slice, then the downstream target. Kept apart from
  // out_log_ so per-channel truncation and replay stay exact (the events
  // carry the origin's channel identity, not this slice's).
  std::map<SliceId, std::map<SliceId, std::deque<WireEvent>>> adopted_log_;

  std::uint64_t events_processed_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::size_t net_bytes_sent_ = 0;

  std::unique_ptr<sim::PeriodicTimer> flush_timer_;
  friend class HostRuntime;
};

[[nodiscard]] const char* to_string(SliceRuntime::State state);

// Incremental pre-copy page diffing (byte-exact by construction; pinned by
// tests/test_migration_strategies.cpp). `diff_pages` walks `next` in
// fixed-size chunks and emits every chunk that is absent from, longer or
// shorter than, or different from the same offsets of `base`.
[[nodiscard]] std::vector<StatePage> diff_pages(
    const std::vector<std::byte>& base, const std::vector<std::byte>& next,
    std::size_t page_bytes);
// Rebuilds the full image: resize `base` to `full_bytes` (truncating or
// zero-padding), then overwrite the shipped pages at their offsets.
[[nodiscard]] std::vector<std::byte> apply_pages(
    std::vector<std::byte> base, std::size_t full_bytes,
    const std::vector<StatePage>& pages);

// Legal slice lifecycle transitions: freeze only from active, activation
// only from a buffering replica, retirement from anywhere (failure and
// teardown paths), and the self-edges the protocol re-enters (a repeated
// freeze request, retiring an already-retired slice).
[[nodiscard]] bool slice_transition_legal(SliceRuntime::State from,
                                          SliceRuntime::State to);

// Contract-layer assertion of the relation above (no-op in default builds).
void assert_slice_transition(SliceId slice, SliceRuntime::State from,
                             SliceRuntime::State to);

// Host-side runtime: message dispatch, slice registry, probes.
class HostRuntime {
 public:
  HostRuntime(Engine& engine, cluster::Host& cpu);
  ~HostRuntime();
  HostRuntime(const HostRuntime&) = delete;
  HostRuntime& operator=(const HostRuntime&) = delete;

  [[nodiscard]] HostId host_id() const { return cpu_.id(); }
  [[nodiscard]] cluster::Host& cpu() { return cpu_; }
  [[nodiscard]] net::Endpoint endpoint() const { return endpoint_; }
  [[nodiscard]] Engine& engine() { return engine_; }

  // Deployment-time (configuration distribution; not latency-critical).
  void add_slice(SliceId id, SliceRuntime::State initial_state);
  void set_directory(const std::unordered_map<SliceId, SliceLocation>& dir);
  void set_host_endpoint(HostId host, net::Endpoint endpoint);
  void update_location(SliceId slice, SliceLocation location);

  [[nodiscard]] bool has_slice(SliceId id) const;
  [[nodiscard]] SliceRuntime* slice(SliceId id);
  [[nodiscard]] std::size_t slice_count() const { return slices_.size(); }
  [[nodiscard]] std::vector<SliceId> slice_ids() const;

  // Delivers an externally-injected event (virtual channel; see
  // kExternalChannel) to the local instance of the destination slice.
  void deliver_external(const WireEvent& event);

  // Sends a batch of events toward the (logical) destination slice of each
  // event, honoring primary + shadow duplication. Called by slices.
  void send_events(SliceId from_slice,
                   std::unordered_map<SliceId, std::vector<WireEvent>> by_dest,
                   std::size_t* bytes_accum);

  // Point-to-point sends used by the migration protocol.
  void send_to_host(HostId host, net::MessagePtr msg, std::size_t bytes);
  void send_control(net::Endpoint to, net::MessagePtr msg, std::size_t bytes);

  // Probes.
  [[nodiscard]] cluster::HostProbe collect_probe(SimDuration window);
  void enable_probes(net::Endpoint target, SimDuration interval);
  void disable_probes();

  // Reliable control plane (non-null iff EngineConfig::reliable_control).
  [[nodiscard]] net::ReliableChannel* control_channel() const {
    return channel_.get();
  }
  // Cancels all pending retransmissions and releases the endpoint binding.
  // Called when this host is declared failed so the quarantined runtime's
  // channel cannot keep escalating give-ups against live peers.
  void shutdown_control_channel() { channel_.reset(); }

  [[nodiscard]] std::uint64_t dropped_events() const { return dropped_events_; }

 private:
  void on_delivery(const net::Delivery& delivery);
  void handle_control(const net::Delivery& delivery);
  void handle_create_replica(const CreateReplicaRequest& req);
  void handle_start_duplication(const StartDuplicationRequest& req);
  void handle_freeze(const FreezeRequest& req);
  void handle_precopy(const PrecopyRequest& req);
  void handle_precopy_state(const PrecopyStateMessage& msg);
  void handle_state_transfer(const StateTransferMessage& msg);
  void handle_directory_update(const DirectoryUpdateMessage& msg);
  void handle_teardown(const TeardownRequest& req);
  void handle_restore(const RestoreFromCheckpointMessage& msg);
  void handle_abort_migration(const AbortMigrationRequest& req);
  void handle_abort_replica(const AbortReplicaRequest& req);

  // Retires a slice and removes it from the registry. Unlike teardown this
  // tolerates pending CPU work: the runtime is quarantined (not destroyed)
  // so in-flight job callbacks die harmlessly.
  void evict_slice(SliceId id);

  Engine& engine_;
  cluster::Host& cpu_;
  net::Endpoint endpoint_;
  // Non-null iff EngineConfig::reliable_control: owns endpoint_'s binding
  // and retransmits this host's control traffic. Data-plane batches and
  // probes bypass it (probes stay lossy on purpose: silence is the failure
  // detector's signal).
  std::unique_ptr<net::ReliableChannel> channel_;
  std::unordered_map<SliceId, std::unique_ptr<SliceRuntime>> slices_;
  std::vector<std::unique_ptr<SliceRuntime>> retired_slices_;
  std::unordered_map<SliceId, SliceLocation> directory_;
  std::unordered_map<HostId, net::Endpoint> host_endpoints_;
  std::uint64_t dropped_events_ = 0;

  // Probe accounting.
  double last_host_busy_us_ = 0.0;
  std::unordered_map<SliceId, double> last_slice_busy_us_;
  std::unordered_map<SliceId, std::size_t> last_slice_net_bytes_;
  SimTime last_probe_time_{0};
  net::Endpoint probe_target_;
  std::unique_ptr<sim::PeriodicTimer> probe_timer_;

  friend class SliceRuntime;
  friend class Engine;
};

}  // namespace esh::engine
