#include "engine/host_runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/protocol_spec.hpp"
#include "common/det.hpp"
#include "common/log.hpp"
#include "engine/engine.hpp"

namespace esh::engine {

const char* to_string(SliceRuntime::State state) {
  switch (state) {
    case SliceRuntime::State::kActive: return "active";
    case SliceRuntime::State::kInactiveReplica: return "inactive-replica";
    case SliceRuntime::State::kFreezePending: return "freeze-pending";
    case SliceRuntime::State::kFrozen: return "frozen";
    case SliceRuntime::State::kRetired: return "retired";
  }
  return "unknown";
}

bool slice_transition_legal(SliceRuntime::State from, SliceRuntime::State to) {
  // Edge list (with per-edge rationale) lives in the declarative table in
  // src/analysis/protocol_spec.cpp, shared with the model checker and docs.
  return analysis::slice_lifecycle_spec().legal(static_cast<std::size_t>(from),
                                                static_cast<std::size_t>(to));
}

void assert_slice_transition([[maybe_unused]] SliceId slice,
                             [[maybe_unused]] SliceRuntime::State from,
                             [[maybe_unused]] SliceRuntime::State to) {
  ESH_STATE_MACHINE_ASSERT(
      "engine", "slice-state-legal", slice_transition_legal(from, to),
      ::esh::contracts::Detail{}.slice(slice).transition(to_string(from),
                                                         to_string(to)));
}

// ---- pre-copy page diffing ---------------------------------------------------

std::vector<StatePage> diff_pages(const std::vector<std::byte>& base,
                                  const std::vector<std::byte>& next,
                                  std::size_t page_bytes) {
  if (page_bytes == 0) page_bytes = 1;
  std::vector<StatePage> out;
  for (std::size_t off = 0; off < next.size(); off += page_bytes) {
    const std::size_t len = std::min(page_bytes, next.size() - off);
    // A page ships when the baseline has nothing (or a different length —
    // a trailing partial chunk that grew or shrank) at these offsets, or
    // the bytes differ. Everything else is reconstructed from the baseline.
    const std::size_t base_len =
        off >= base.size() ? 0 : std::min(page_bytes, base.size() - off);
    const bool same =
        base_len == len &&
        std::equal(next.begin() + static_cast<std::ptrdiff_t>(off),
                   next.begin() + static_cast<std::ptrdiff_t>(off + len),
                   base.begin() + static_cast<std::ptrdiff_t>(off));
    if (same) continue;
    StatePage page;
    page.offset = off;
    page.bytes.assign(next.begin() + static_cast<std::ptrdiff_t>(off),
                      next.begin() + static_cast<std::ptrdiff_t>(off + len));
    out.push_back(std::move(page));
  }
  return out;
}

std::vector<std::byte> apply_pages(std::vector<std::byte> base,
                                   std::size_t full_bytes,
                                   const std::vector<StatePage>& pages) {
  base.resize(full_bytes);  // truncate a shrunk image, zero-pad a grown one
  for (const StatePage& page : pages) {
    if (page.offset + page.bytes.size() > base.size()) {
      throw std::logic_error{"apply_pages: page outside the full image"};
    }
    std::copy(page.bytes.begin(), page.bytes.end(),
              base.begin() + static_cast<std::ptrdiff_t>(page.offset));
  }
  return base;
}

// ---- StaticConfig ------------------------------------------------------------

const StaticConfig::OperatorInfo& StaticConfig::op_of(SliceId id) const {
  return operators.at(info_of(id).op_index);
}

const StaticConfig::SliceInfo& StaticConfig::info_of(SliceId id) const {
  auto it = slice_infos.find(id);
  if (it == slice_infos.end()) {
    throw std::logic_error{"StaticConfig: unknown slice"};
  }
  return it->second;
}

std::uint32_t StaticConfig::index_of(std::string_view name) const {
  auto it = op_by_name.find(std::string{name});
  if (it == op_by_name.end()) {
    throw std::logic_error{"StaticConfig: unknown operator"};
  }
  return it->second;
}

SliceId StaticConfig::OperatorInfo::route(std::uint64_t key) const {
  // Linear scan: operators have a handful of slices, and the coverage set
  // tiles the key space exactly, so the first hit is the only hit.
  for (std::size_t i = 0; i < coverages.size(); ++i) {
    if (coverages[i].covers(key)) return slices[i];
  }
  throw std::logic_error{"OperatorInfo::route: key not covered"};
}

// ---- SliceRuntime ------------------------------------------------------------

SliceRuntime::SliceRuntime(HostRuntime& host, SliceId id,
                           std::unique_ptr<Handler> handler,
                           State initial_state)
    : host_(host), id_(id), handler_(std::move(handler)), state_(initial_state) {
  logging_ = host_.engine().config().checkpoints.enabled;
  if (state_ == State::kActive) {
    start_flush_timer();
    start_checkpoint_timer();
  }
}

SliceRuntime::~SliceRuntime() = default;

void SliceRuntime::set_state(State next) {
  assert_slice_transition(id_, state_, next);
  state_ = next;
}

void SliceRuntime::start_flush_timer() {
  auto& engine = host_.engine();
  const auto period = engine.config().flush_interval;
  // Deterministic per-slice phase so slices do not flush in lockstep. A
  // seeded hash of the slice id — not the shared RNG stream — keeps every
  // slice's phase independent of how many timers started before it, so
  // creating a slice mid-run (split child, recovery) never rephases the
  // rest of the cluster.
  const auto phase = micros(static_cast<std::int64_t>(
      key_mix64(engine.seed() ^ id_.value()) %
      static_cast<std::uint64_t>(period.count())));
  flush_timer_ = std::make_unique<sim::PeriodicTimer>(
      engine.simulator(), phase + micros(1), period, [this] { flush_outputs(); });
}

void SliceRuntime::on_wire_event(const WireEvent& event) {
  switch (state_) {
    case State::kRetired:
    case State::kFrozen:
      // A frozen slice's inbound events are duplicated to its replica;
      // dropping here loses nothing.
      ++duplicates_dropped_;
      return;
    case State::kInactiveReplica: {
      // Raw buffering: reordering and deduplication happen at activation,
      // once the timestamp vector is known.
      replica_buffer_[event.from].emplace(event.seq, event.payload);
      return;
    }
    case State::kActive:
    case State::kFreezePending:
      break;
  }
  auto& channel = in_[event.from];
  if (event.seq < channel.expected) {
    ++duplicates_dropped_;
    return;
  }
  channel.pending.emplace(event.seq, event.payload);
  deliver_in_order(event.from, channel);
  if (state_ == State::kFreezePending) check_freeze();
  if (split_spec_ || absorb_spec_) check_transition_drain();
}

void SliceRuntime::deliver_in_order([[maybe_unused]] SliceId from,
                                    ChannelIn& channel) {
  // Gap-freedom: every sequence number below `expected` has been dispatched
  // exactly once, so the two cursors stay locked together. The one legal
  // exception is the window right after a recovery rewind (reset_channel),
  // marked by `rewound` and closed by the first post-rewind delivery.
  ESH_INVARIANT("engine", "channel-gap-free",
                channel.rewound ||
                    channel.expected == channel.last_dispatched + 1,
                ::esh::contracts::Detail{}
                    .slice(id_)
                    .expected(channel.last_dispatched + 1)
                    .actual(channel.expected)
                    .note("input channel from slice " +
                          std::to_string(from.value())));
  std::vector<PayloadPtr> run;
  while (!channel.pending.empty() &&
         channel.pending.begin()->first == channel.expected &&
         (channel.hold == 0 || channel.expected < channel.hold)) {
    auto node = channel.pending.extract(channel.pending.begin());
    run.push_back(std::move(node.mapped()));
    channel.last_dispatched = channel.expected;
    ++channel.expected;
  }
  if (!run.empty()) {
    channel.rewound = false;  // cursors re-locked by the deliveries above
    dispatch_run(std::move(run));
  }
}

void SliceRuntime::dispatch_run(std::vector<PayloadPtr> run) {
  const std::size_t cap =
      std::max<std::size_t>(1, host_.engine().config().dispatch_batch_max);
  std::size_t i = 0;
  while (i < run.size()) {
    if (!handler_->can_batch(run[i])) {
      dispatch(std::move(run[i]));
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < run.size() && j - i < cap && handler_->can_batch(run[j])) ++j;
    if (j == i + 1) {
      dispatch(std::move(run[i]));
      ++i;
      continue;
    }
    // Coalesced group: the first of its CPU jobs to run precomputes the
    // whole batch (the state all of them observe is identical -- any later
    // write job of this slice waits for these read jobs). Each event keeps
    // its own job, cost and lock, so simulated scheduling and per-event
    // completion times are exactly as in the unbatched dispatch.
    struct BatchRun {
      std::vector<PayloadPtr> payloads;
      bool started = false;
    };
    auto batch = std::make_shared<BatchRun>();
    batch->payloads.assign(run.begin() + static_cast<std::ptrdiff_t>(i),
                           run.begin() + static_cast<std::ptrdiff_t>(j));
    for (const PayloadPtr& payload : batch->payloads) {
      const double cost = handler_->cost_units(payload);
      const cluster::LockMode mode = handler_->lock_mode(payload);
      host_.cpu().submit(id_, mode, cost, [this, batch, payload]() mutable {
        if (state_ == State::kRetired) return;
        if (!batch->started) {
          batch->started = true;
          handler_->on_batch_start(*this, batch->payloads);
        }
        process(std::move(payload));
      });
    }
    i = j;
  }
}

void SliceRuntime::dispatch(PayloadPtr payload) {
  const double cost = handler_->cost_units(payload);
  const cluster::LockMode mode = handler_->lock_mode(payload);
  host_.cpu().submit(id_, mode, cost,
                     [this, payload = std::move(payload)]() mutable {
                       if (state_ == State::kRetired) return;
                       process(std::move(payload));
                     });
}

void SliceRuntime::process(PayloadPtr payload) {
  ++events_processed_;
  handler_->on_event(*this, payload);
}

void SliceRuntime::emit(std::string_view op, Routing routing,
                        PayloadPtr payload) {
  const auto& cfg = host_.engine().static_config();
  const auto& target_op = cfg.operators.at(cfg.index_of(op));
  const auto& slices = target_op.slices;
  if (slices.empty()) {
    throw std::logic_error{"emit: operator has no slices"};
  }
  auto queue_to = [&](SliceId target) {
    auto [it, inserted] = next_out_seq_.try_emplace(target, 1);
    const SeqNo seq = it->second++;
    out_buffer_[target].push_back(WireEvent{id_, target, seq, payload});
    ++out_buffer_events_;
    if (logging_) {
      // Upstream backup: retained until the downstream checkpoints.
      out_log_[target].push_back(WireEvent{id_, target, seq, payload});
    }
  };
  switch (routing.kind()) {
    case Routing::Kind::kToIndex:
      queue_to(slices.at(routing.index()));
      break;
    case Routing::Kind::kBroadcast:
      for (SliceId target : slices) queue_to(target);
      break;
    case Routing::Kind::kHash:
      // Never-split operators keep the original modulo rule (byte-identical
      // to the pre-elasticity engine); refined operators route through the
      // coverage set flipped atomically at each cut-over.
      queue_to(target_op.refined ? target_op.route(routing.key())
                                 : slices[routing.key() % slices.size()]);
      break;
  }
}

SimTime SliceRuntime::now() const {
  return host_.engine().simulator().now();
}

std::size_t SliceRuntime::slice_index() const {
  return host_.engine().static_config().info_of(id_).slice_index;
}

std::size_t SliceRuntime::slice_count(std::string_view op) const {
  const auto& cfg = host_.engine().static_config();
  return cfg.operators.at(cfg.index_of(op)).slices.size();
}

std::vector<std::uint32_t> SliceRuntime::fan_indices(
    std::string_view op) const {
  const auto& cfg = host_.engine().static_config();
  const auto& target_op = cfg.operators.at(cfg.index_of(op));
  std::vector<std::uint32_t> fan;
  fan.reserve(target_op.slices.size());
  for (const SliceId slice : target_op.slices) {
    fan.push_back(cfg.info_of(slice).slice_index);
  }
  std::sort(fan.begin(), fan.end());
  return fan;
}

std::uint64_t SliceRuntime::routing_epoch() const {
  return host_.engine().routing_epoch();
}

void SliceRuntime::flush_outputs() {
  if (out_buffer_events_ == 0) return;
#if ESH_INVARIANTS_ENABLED
  // state_bytes-style accounting: the running event counter must equal the
  // sum of the per-target buffers it summarizes.
  std::size_t buffered = 0;
  // lint:allow(unordered-iteration): order-free sum
  for (const auto& [target, events] : out_buffer_) buffered += events.size();
  ESH_INVARIANT("engine", "out-buffer-accounting",
                buffered == out_buffer_events_,
                ::esh::contracts::Detail{}
                    .slice(id_)
                    .expected(out_buffer_events_)
                    .actual(buffered));
#endif
  auto buffers = std::move(out_buffer_);
  out_buffer_.clear();
  out_buffer_events_ = 0;
  host_.send_events(id_, std::move(buffers), &net_bytes_sent_);
}

SeqNo SliceRuntime::next_seq_for(SliceId target) const {
  auto it = next_out_seq_.find(target);
  return it == next_out_seq_.end() ? SeqNo{1} : it->second;
}

void SliceRuntime::start_checkpoint_timer() {
  if (!logging_) return;
  auto& engine = host_.engine();
  const auto period = engine.config().checkpoints.interval;
  // Same per-slice hash phase as the flush timer (different period, so the
  // two timers de-phase naturally); see start_flush_timer for why this is
  // a hash of the slice id and not a shared-RNG draw.
  const auto phase = micros(static_cast<std::int64_t>(
      key_mix64(engine.seed() ^ id_.value()) %
      static_cast<std::uint64_t>(period.count())));
  checkpoint_timer_ = std::make_unique<sim::PeriodicTimer>(
      engine.simulator(), phase + micros(1), period,
      [this] { checkpoint(host_.engine().checkpoint_store_endpoint()); });
}

void SliceRuntime::truncate_log(SliceId downstream, SeqNo upto) {
  auto it = out_log_.find(downstream);
  if (it == out_log_.end()) return;
  auto& log = it->second;
  while (!log.empty() && log.front().seq <= upto) log.pop_front();
}

void SliceRuntime::replay_log(SliceId downstream, SeqNo above) {
  auto it = out_log_.find(downstream);
  if (it == out_log_.end()) return;
  std::unordered_map<SliceId, std::vector<WireEvent>> resend;
  for (const WireEvent& event : it->second) {
    if (event.seq > above) resend[downstream].push_back(event);
  }
  if (!resend.empty()) {
    host_.send_events(id_, std::move(resend), &net_bytes_sent_);
  }
}

void SliceRuntime::reset_channel(SliceId upstream, SeqNo base) {
  auto it = in_.find(upstream);
  if (it == in_.end()) return;
  ChannelIn& channel = it->second;
  // Buffered events at or above the base are originals from the old
  // instance whose sequence numbers no longer mean the same content.
  std::erase_if(channel.pending,
                [base](const auto& entry) { return entry.first >= base; });
  if (channel.expected > base) {
    channel.expected = base;
    channel.rewound = true;  // gap-freedom exemption until next delivery
  }
}

void SliceRuntime::checkpoint(net::Endpoint store) {
  if (state_ != State::kActive) return;
  const auto& cost_model = host_.engine().config().cost;
  const double cost =
      500.0 + cost_model.state_serialize_units_per_byte *
                  static_cast<double>(handler_->state_bytes());
  // Consistent cut: the RW job runs after in-flight work, so the state
  // matches the dispatched-events watermark exactly (as in migration).
  host_.cpu().submit(id_, cluster::LockMode::kWrite, cost, [this, store] {
    if (state_ != State::kActive) return;
    auto msg = std::make_shared<CheckpointMessage>();
    msg->slice = id_;
    msg->coverage_epoch = coverage_epoch_;
    BinaryWriter writer;
    handler_->serialize_state(writer);
    msg->state = std::make_shared<const std::vector<std::byte>>(
        std::move(writer).take());
    // Sorted: checkpoint contents must not depend on hash-table layout
    // (they are re-delivered verbatim on recovery).
    for (const SliceId from : sorted_keys(in_)) {
      msg->processed.emplace_back(from, in_.at(from).last_dispatched);
    }
    for (const SliceId target : sorted_keys(next_out_seq_)) {
      msg->out_seqs.emplace_back(target, next_out_seq_.at(target));
    }
    append_flattened_logs(msg->log);
    const std::size_t bytes = msg->state->size() + 64 * msg->log.size();
    host_.send_control(store, std::move(msg), bytes);
  });
}

void SliceRuntime::append_flattened_logs(std::vector<WireEvent>& out) const {
  // Own log first, then adopted origins; sorted at every level so the wire
  // format never depends on hash-table layout. The reader reconstructs the
  // partition by WireEvent::from (== id_ for own entries).
  for (const SliceId target : sorted_keys(out_log_)) {
    const auto& log = out_log_.at(target);
    out.insert(out.end(), log.begin(), log.end());
  }
  for (const auto& [origin, per_target] : adopted_log_) {
    for (const auto& [target, log] : per_target) {
      out.insert(out.end(), log.begin(), log.end());
    }
  }
}

void SliceRuntime::truncate_adopted(SliceId origin, SliceId downstream,
                                    SeqNo upto) {
  auto origin_it = adopted_log_.find(origin);
  if (origin_it == adopted_log_.end()) return;
  auto it = origin_it->second.find(downstream);
  if (it == origin_it->second.end()) return;
  auto& log = it->second;
  while (!log.empty() && log.front().seq <= upto) log.pop_front();
}

void SliceRuntime::replay_adopted(SliceId origin, SliceId downstream,
                                  SeqNo above) {
  auto origin_it = adopted_log_.find(origin);
  if (origin_it == adopted_log_.end()) return;
  auto it = origin_it->second.find(downstream);
  if (it == origin_it->second.end()) return;
  std::unordered_map<SliceId, std::vector<WireEvent>> resend;
  for (const WireEvent& event : it->second) {
    if (event.seq > above) resend[downstream].push_back(event);
  }
  if (!resend.empty()) {
    host_.send_events(id_, std::move(resend), &net_bytes_sent_);
  }
}

std::size_t SliceRuntime::logged_events() const {
  std::size_t total = 0;
  // lint:allow(unordered-iteration): order-free sum
  for (const auto& [target, log] : out_log_) total += log.size();
  for (const auto& [origin, per_target] : adopted_log_) {
    for (const auto& [target, log] : per_target) total += log.size();
  }
  return total;
}

void SliceRuntime::request_freeze(FreezeSpec spec) {
  if (state_ != State::kActive && state_ != State::kFreezePending) {
    throw std::logic_error{"request_freeze: slice not active"};
  }
  freeze_spec_ = std::move(spec);
  set_state(State::kFreezePending);
  check_freeze();
}

bool SliceRuntime::unfreeze() {
  switch (state_) {
    case State::kActive:
      // The freeze request never arrived (or was lost): nothing to undo.
      freeze_spec_.reset();
      return true;
    case State::kFreezePending:
      freeze_spec_.reset();
      set_state(State::kActive);
      return true;
    case State::kFrozen:
    case State::kInactiveReplica:
    case State::kRetired:
      return false;
  }
  return false;
}

void SliceRuntime::thaw() {
  if (state_ != State::kFrozen) {
    throw std::logic_error{"thaw: slice not frozen"};
  }
  freeze_spec_.reset();
  set_state(State::kActive);
  // do_freeze stopped the flush timer; processing resumes, so restart it.
  start_flush_timer();
}

void SliceRuntime::check_freeze() {
  if (state_ != State::kFreezePending || !freeze_spec_) return;
  // Catch-up condition (paper Figure 3, step 3): every event below the
  // duplication start must have been dispatched locally, so the union of
  // (processed here) + (duplicated to the replica) has no gap.
  for (const auto& [channel_id, first_duplicated] : freeze_spec_->catchup) {
    const auto it = in_.find(channel_id);
    const SeqNo expected = it == in_.end() ? SeqNo{1} : it->second.expected;
    if (expected < first_duplicated) return;
  }
  do_freeze();
}

void SliceRuntime::do_freeze() {
  set_state(State::kFrozen);
  if (flush_timer_) flush_timer_->stop();

  const auto& cost_model = host_.engine().config().cost;
  const double cost =
      1000.0 + cost_model.state_serialize_units_per_byte *
                   static_cast<double>(handler_->state_bytes());
  // kWrite: runs after every in-flight job of this slice completes, so the
  // serialized state reflects exactly the dispatched-events watermark.
  host_.cpu().submit(id_, cluster::LockMode::kWrite, cost, [this] {
    if (state_ != State::kFrozen) return;  // aborted before serialization
    // Ship whatever the final processing jobs emitted before the state is
    // captured; the output sequence counters must cover these events.
    flush_outputs();
    if (freeze_spec_->merge_capture) {
      // Merge retiree: the full state and backup log go to the coordinator
      // (which forwards them to the survivor); the slice stays frozen here
      // until the coordinator tears it down.
      auto msg = std::make_shared<MergeStateMessage>();
      msg->transition = freeze_spec_->migration;
      msg->retiree = id_;
      BinaryWriter writer;
      handler_->serialize_state(writer);
      msg->state = std::make_shared<const std::vector<std::byte>>(
          std::move(writer).take());
      append_flattened_logs(msg->log);
      const std::size_t bytes = msg->state->size() + 64 * msg->log.size();
      host_.send_control(freeze_spec_->reply_to, std::move(msg), bytes);
      return;
    }
    auto msg = std::make_shared<StateTransferMessage>();
    msg->migration = freeze_spec_->migration;
    msg->slice = id_;
    msg->coverage_epoch = coverage_epoch_;
    BinaryWriter writer;
    handler_->serialize_state(writer);
    std::vector<std::byte> image = std::move(writer).take();
    std::size_t ship_bytes = image.size();
    if (freeze_spec_->delta) {
      // Incremental pre-copy final transfer: only the pages dirtied since
      // the last round travel; the replica patches its stored baseline.
      msg->delta = true;
      msg->full_bytes = image.size();
      msg->pages =
          diff_pages(precopy_image_, image,
                     host_.engine().config().precopy_page_bytes);
      ship_bytes = 0;
      for (const StatePage& page : msg->pages) ship_bytes += page.bytes.size();
    } else {
      msg->state = std::make_shared<const std::vector<std::byte>>(
          std::move(image));
    }
    // Sorted: the transfer message is replayed by the destination, so its
    // contents must not depend on hash-table layout.
    for (const SliceId from : sorted_keys(in_)) {
      msg->processed.emplace_back(from, in_.at(from).last_dispatched);
    }
    for (const SliceId target : sorted_keys(next_out_seq_)) {
      msg->out_seqs.emplace_back(target, next_out_seq_.at(target));
    }
    // The upstream-backup log travels with the state: after teardown the
    // source is gone, and replay requests for these events reach the
    // destination host instead.
    append_flattened_logs(msg->log);
    msg->frozen_at = host_.engine().simulator().now();
    msg->reply_to = freeze_spec_->reply_to;
    const std::size_t bytes = ship_bytes + 64 * msg->log.size();
    host_.send_to_host(freeze_spec_->dst_host, std::move(msg), bytes);
  });
}

void SliceRuntime::run_precopy(MigrationId migration, std::size_t round,
                               HostId dst_host, net::Endpoint reply_to) {
  if (state_ != State::kActive) return;
  const auto& cost_model = host_.engine().config().cost;
  const double cost =
      500.0 + cost_model.state_serialize_units_per_byte *
                  static_cast<double>(handler_->state_bytes());
  // kWrite, like a checkpoint cut: the image reflects exactly the
  // dispatched-events watermark, and the slice resumes serving right after.
  host_.cpu().submit(
      id_, cluster::LockMode::kWrite, cost,
      [this, migration, round, dst_host, reply_to] {
        if (state_ != State::kActive) return;  // abort or freeze raced
        BinaryWriter writer;
        handler_->serialize_state(writer);
        std::vector<std::byte> image = std::move(writer).take();
        auto msg = std::make_shared<PrecopyStateMessage>();
        msg->migration = migration;
        msg->slice = id_;
        msg->round = round;
        msg->full_bytes = image.size();
        msg->pages = diff_pages(precopy_image_, image,
                                host_.engine().config().precopy_page_bytes);
        msg->reply_to = reply_to;
        std::size_t bytes = 64;
        for (const StatePage& page : msg->pages) bytes += page.bytes.size();
        // The shipped image becomes the diff baseline of the next round —
        // and of the final delta transfer in do_freeze.
        precopy_image_ = std::move(image);
        host_.send_to_host(dst_host, std::move(msg), bytes);
      });
}

void SliceRuntime::store_precopy(const PrecopyStateMessage& msg) {
  // Patch the accumulated baseline in place; the final delta transfer in
  // activate() patches the same buffer once more and restores from it.
  precopy_image_ =
      apply_pages(std::move(precopy_image_), msg.full_bytes, msg.pages);
  std::size_t bytes = 0;
  for (const StatePage& page : msg.pages) bytes += page.bytes.size();
  auto ack = std::make_shared<PrecopyAck>();
  ack->migration = msg.migration;
  ack->slice = id_;
  ack->round = msg.round;
  ack->bytes = bytes;
  host_.send_control(msg.reply_to, std::move(ack), 64);
}

void SliceRuntime::activate(const StateTransferMessage& msg) {
  if (state_ != State::kInactiveReplica) {
    throw std::logic_error{"activate: slice is not an inactive replica"};
  }
  std::size_t transfer_bytes = msg.state ? msg.state->size() : 0;
  std::size_t state_bytes = transfer_bytes;
  if (msg.delta) {
    // Delta transfer: the wire carried only the dirty pages, but the job
    // deserializes the full patched image.
    state_bytes = msg.full_bytes;
    transfer_bytes = 0;
    for (const StatePage& page : msg.pages) transfer_bytes += page.bytes.size();
  }
  const auto& cost_model = host_.engine().config().cost;
  const double cost =
      1000.0 + cost_model.state_deserialize_units_per_byte *
                   static_cast<double>(state_bytes);
  // Copy what we need from the message; the delivery object dies with this
  // call, the job runs later.
  auto state = msg.state;
  auto processed = msg.processed;
  auto out_seqs = msg.out_seqs;
  auto log = msg.log;
  const auto frozen_at = msg.frozen_at;
  const auto reply_to = msg.reply_to;
  const auto migration = msg.migration;
  const auto coverage_epoch = msg.coverage_epoch;
  const bool delta = msg.delta;
  const std::size_t full_bytes = msg.full_bytes;
  auto pages = msg.pages;
  host_.cpu().submit(
      id_, cluster::LockMode::kWrite, cost,
      [this, state, state_bytes, transfer_bytes,
       processed = std::move(processed), out_seqs = std::move(out_seqs),
       log = std::move(log), frozen_at, reply_to, migration, coverage_epoch,
       delta, full_bytes, pages = std::move(pages)] {
        if (state_ != State::kInactiveReplica) return;  // aborted meanwhile
        if (delta) {
          // Rebuild the full image from the pre-copy baseline plus the
          // final dirty pages, then restore exactly as a full transfer
          // would (byte-identical by diff_pages/apply_pages construction).
          const std::vector<std::byte> image =
              apply_pages(std::move(precopy_image_), full_bytes, pages);
          precopy_image_.clear();
          BinaryReader reader{image};
          handler_->restore_state(reader);
        } else if (state) {
          // Bootstrap recovery ships no state: the handler starts fresh
          // and the full log replay reconstructs it.
          BinaryReader reader{*state};
          handler_->restore_state(reader);
        }
        coverage_epoch_ = coverage_epoch;
        for (const auto& [from, last] : processed) {
          auto& channel = in_[from];
          channel.expected = last + 1;
          channel.last_dispatched = last;
        }
        for (const auto& [target, next] : out_seqs) {
          next_out_seq_[target] = next;
        }
        // Adopt the transferred upstream-backup log so replay requests for
        // pre-cut events can be served from here. Entries this slice did
        // not emit itself belong to adopted channels of merged-away
        // origins and keep their origin's channel identity.
        out_log_.clear();
        adopted_log_.clear();
        for (const WireEvent& event : log) {
          if (event.from == id_) {
            out_log_[event.to].push_back(event);
          } else {
            adopted_log_[event.from][event.to].push_back(event);
          }
        }
        set_state(State::kActive);
        start_flush_timer();
        start_checkpoint_timer();
        host_.update_location(id_, SliceLocation{host_.host_id(), HostId{}});

        // Drain the replica buffer: drop events the original processed,
        // deliver the rest in order.
        auto buffered = std::move(replica_buffer_);
        replica_buffer_.clear();
        // Sorted: drain order decides cross-channel dispatch interleaving.
        for (const SliceId from : sorted_keys(buffered)) {
          auto& events = buffered.at(from);
          auto& channel = in_[from];
          for (auto& [seq, payload] : events) {
            if (seq < channel.expected) {
              ++duplicates_dropped_;
              continue;
            }
            channel.pending.emplace(seq, std::move(payload));
          }
          deliver_in_order(from, channel);
        }

        auto ack = std::make_shared<ActivatedAck>();
        ack->migration = migration;
        ack->slice = id_;
        ack->frozen_at = frozen_at;
        ack->activated_at = host_.engine().simulator().now();
        ack->state_bytes = state_bytes;
        ack->transfer_bytes = transfer_bytes;
        host_.send_control(reply_to, std::move(ack), 64);
      });
}

void SliceRuntime::retire() {
  set_state(State::kRetired);
  if (flush_timer_) flush_timer_->stop();
  if (checkpoint_timer_) checkpoint_timer_->stop();
  in_.clear();
  replica_buffer_.clear();
  precopy_image_.clear();
  out_buffer_.clear();
  out_buffer_events_ = 0;
  out_log_.clear();
  adopted_log_.clear();
  split_spec_.reset();
  absorb_spec_.reset();
  absorb_state_.reset();
  absorb_log_.clear();
  absorb_state_ready_ = false;
  capture_submitted_ = false;
}

// ---- key-level split / merge -------------------------------------------------

void SliceRuntime::begin_split(SplitSpec spec) {
  if (state_ != State::kActive) {
    throw std::logic_error{"begin_split: slice not active"};
  }
  split_spec_ = std::move(spec);
  capture_submitted_ = false;
  for (const auto& [channel_id, cut] : split_spec_->cutover) {
    in_[channel_id].hold = cut;
  }
  check_transition_drain();
}

void SliceRuntime::begin_absorb(AbsorbSpec spec) {
  if (state_ != State::kActive) {
    throw std::logic_error{"begin_absorb: slice not active"};
  }
  absorb_spec_ = std::move(spec);
  capture_submitted_ = false;
  for (const auto& [channel_id, cut] : absorb_spec_->cutover) {
    in_[channel_id].hold = cut;
  }
  check_transition_drain();
}

void SliceRuntime::deliver_absorb_state(
    std::shared_ptr<const std::vector<std::byte>> state,
    std::vector<WireEvent> log) {
  absorb_state_ = std::move(state);
  absorb_log_ = std::move(log);
  absorb_state_ready_ = true;
  check_transition_drain();
}

void SliceRuntime::preinstall_holds(
    const std::vector<std::pair<SliceId, SeqNo>>& holds) {
  for (const auto& [channel_id, cut] : holds) {
    in_[channel_id].hold = cut;
  }
}

void SliceRuntime::check_transition_drain() {
  if (capture_submitted_) return;
  if (!split_spec_ && !absorb_spec_) return;
  const auto& cutover =
      split_spec_ ? split_spec_->cutover : absorb_spec_->cutover;
  // Drained when every cut-over channel has dispatched its full pre-cut
  // prefix: expected == cut (holds stop delivery exactly there).
  for (const auto& [channel_id, cut] : cutover) {
    const auto it = in_.find(channel_id);
    const SeqNo expected = it == in_.end() ? SeqNo{1} : it->second.expected;
    if (expected < cut) return;
  }
  if (absorb_spec_ && !absorb_state_ready_) return;
  capture_submitted_ = true;
  if (split_spec_) {
    run_split_capture();
  } else {
    run_absorb();
  }
}

void SliceRuntime::run_split_capture() {
  const auto& cost_model = host_.engine().config().cost;
  // Serializing roughly half the store; the kWrite lock makes the capture
  // run after every in-flight pre-cut job, so the state it sees is exactly
  // the pre-cut-over prefix.
  const double cost =
      1000.0 + cost_model.state_serialize_units_per_byte *
                   static_cast<double>(handler_->state_bytes() / 2);
  host_.cpu().submit(id_, cluster::LockMode::kWrite, cost, [this] {
    if (state_ != State::kActive || !split_spec_) return;
    // Ship pre-capture emissions first: the child must not see matches the
    // parent produced for events it will never hold.
    flush_outputs();
    auto msg = std::make_shared<SplitStateMessage>();
    msg->transition = split_spec_->transition;
    msg->parent = id_;
    msg->child = split_spec_->child;
    BinaryWriter writer;
    msg->moved = handler_->split_state(split_spec_->child_cov, writer);
    msg->state = std::make_shared<const std::vector<std::byte>>(
        std::move(writer).take());
    ++coverage_epoch_;
    msg->coverage_epoch = coverage_epoch_;
    const std::size_t bytes = msg->state->size() + 64;
    host_.send_control(split_spec_->reply_to, std::move(msg), bytes);
    split_spec_.reset();
    capture_submitted_ = false;
    release_holds();
  });
}

void SliceRuntime::run_absorb() {
  const auto& cost_model = host_.engine().config().cost;
  const double cost =
      1000.0 + cost_model.state_deserialize_units_per_byte *
                   static_cast<double>(absorb_state_ ? absorb_state_->size()
                                                     : 0);
  host_.cpu().submit(id_, cluster::LockMode::kWrite, cost, [this] {
    if (state_ != State::kActive || !absorb_spec_) return;
    flush_outputs();
    if (absorb_state_ && !absorb_state_->empty()) {
      BinaryReader reader{*absorb_state_};
      handler_->absorb_state(reader);
    }
    // Adopt the retiree's backup log (and any logs it had itself adopted):
    // replay requests for its pre-merge output are served from here now.
    for (const WireEvent& event : absorb_log_) {
      adopted_log_[event.from][event.to].push_back(event);
    }
    ++coverage_epoch_;
    auto ack = std::make_shared<MergeAbsorbAck>();
    ack->transition = absorb_spec_->transition;
    ack->survivor = id_;
    ack->coverage_epoch = coverage_epoch_;
    host_.send_control(absorb_spec_->reply_to, std::move(ack), 64);
    absorb_spec_.reset();
    absorb_state_.reset();
    absorb_log_.clear();
    absorb_state_ready_ = false;
    capture_submitted_ = false;
    release_holds();
  });
}

void SliceRuntime::release_holds() {
  // Sorted: release order decides cross-channel dispatch interleaving.
  for (const SliceId channel_id : sorted_keys(in_)) {
    auto& channel = in_.at(channel_id);
    if (channel.hold == 0) continue;
    channel.hold = 0;
    deliver_in_order(channel_id, channel);
  }
}

// ---- HostRuntime -------------------------------------------------------------

HostRuntime::HostRuntime(Engine& engine, cluster::Host& cpu)
    : engine_(engine), cpu_(cpu) {
  endpoint_ = engine_.network().new_endpoint();
  if (engine_.config().reliable_control) {
    channel_ = std::make_unique<net::ReliableChannel>(
        engine_.simulator(), engine_.network(), endpoint_, cpu_.id(),
        [this](const net::Delivery& d) { on_delivery(d); },
        engine_.config().reliable);
    channel_->on_give_up([this](net::Endpoint peer) {
      engine_.notify_control_give_up(peer);
    });
  } else {
    engine_.network().bind(endpoint_, cpu_.id(),
                           [this](const net::Delivery& d) { on_delivery(d); });
  }
}

HostRuntime::~HostRuntime() {
  probe_timer_.reset();
  channel_.reset();  // unbinds endpoint_ when reliable
  if (engine_.network().bound(endpoint_)) {
    engine_.network().unbind(endpoint_);
  }
}

void HostRuntime::add_slice(SliceId id, SliceRuntime::State initial_state) {
  if (slices_.contains(id)) {
    throw std::logic_error{"HostRuntime::add_slice: duplicate slice"};
  }
  const auto& cfg = engine_.static_config();
  const auto& info = cfg.info_of(id);
  auto handler = cfg.operators.at(info.op_index).factory(info.slice_index);
  slices_[id] =
      std::make_unique<SliceRuntime>(*this, id, std::move(handler), initial_state);
}

void HostRuntime::set_directory(
    const std::unordered_map<SliceId, SliceLocation>& dir) {
  directory_ = dir;
}

void HostRuntime::set_host_endpoint(HostId host, net::Endpoint endpoint) {
  host_endpoints_[host] = endpoint;
}

void HostRuntime::update_location(SliceId slice, SliceLocation location) {
  directory_[slice] = location;
}

bool HostRuntime::has_slice(SliceId id) const { return slices_.contains(id); }

SliceRuntime* HostRuntime::slice(SliceId id) {
  auto it = slices_.find(id);
  return it == slices_.end() ? nullptr : it->second.get();
}

std::vector<SliceId> HostRuntime::slice_ids() const {
  // Sorted: callers iterate this to retire/recover slices in order.
  return sorted_keys(slices_);
}

void HostRuntime::deliver_external(const WireEvent& event) {
  auto it = slices_.find(event.to);
  if (it == slices_.end()) {
    ++dropped_events_;
    return;
  }
  it->second->on_wire_event(event);
}

void HostRuntime::send_events(
    SliceId from_slice,
    std::unordered_map<SliceId, std::vector<WireEvent>> by_dest,
    std::size_t* bytes_accum) {
  (void)from_slice;
  const auto& cost = engine_.config().cost;
  // Group per destination host, duplicating to shadows. Sorted at both
  // levels: concatenation order fixes intra-batch delivery order, and send
  // order serializes on this host's NIC.
  std::unordered_map<HostId, std::vector<WireEvent>> per_host;
  for (const SliceId dest : sorted_keys(by_dest)) {
    auto& events = by_dest.at(dest);
    auto it = directory_.find(dest);
    if (it == directory_.end()) {
      dropped_events_ += events.size();
      continue;
    }
    const SliceLocation& loc = it->second;
    if (loc.shadow.valid() && loc.shadow != loc.primary) {
      if (loc.redirect) {
        // Park mode (stop-and-restart): the shadow replaces the primary as
        // the only receiver, so the source drains to a natural freeze. Not
        // duplicate traffic — the primary send is skipped entirely.
        auto& parked = per_host[loc.shadow];
        if (parked.empty()) {
          parked = std::move(events);
        } else {
          parked.insert(parked.end(), std::make_move_iterator(events.begin()),
                        std::make_move_iterator(events.end()));
        }
        continue;
      }
      std::size_t dup_bytes = 0;
      for (const auto& ev : events) {
        dup_bytes += ev.payload->bytes() + cost.event_header_bytes;
      }
      engine_.note_duplicate_bytes(dup_bytes);
      auto& shadow_list = per_host[loc.shadow];
      shadow_list.insert(shadow_list.end(), events.begin(), events.end());
    }
    auto& list = per_host[loc.primary];
    if (list.empty()) {
      list = std::move(events);
    } else {
      list.insert(list.end(), std::make_move_iterator(events.begin()),
                  std::make_move_iterator(events.end()));
    }
  }
  for (const HostId host : sorted_keys(per_host)) {
    auto& events = per_host.at(host);
    auto ep_it = host_endpoints_.find(host);
    if (ep_it == host_endpoints_.end()) {
      dropped_events_ += events.size();
      continue;
    }
    std::size_t bytes = 0;
    for (const auto& ev : events) {
      bytes += ev.payload->bytes() + cost.event_header_bytes;
    }
    auto msg = std::make_shared<EventBatchMessage>();
    msg->events = std::move(events);
    if (bytes_accum != nullptr) *bytes_accum += bytes;
    engine_.network().send(endpoint_, ep_it->second, std::move(msg), bytes);
  }
}

void HostRuntime::send_to_host(HostId host, net::MessagePtr msg,
                               std::size_t bytes) {
  auto it = host_endpoints_.find(host);
  if (it == host_endpoints_.end()) {
    throw std::logic_error{"send_to_host: unknown host endpoint"};
  }
  send_control(it->second, std::move(msg), bytes);
}

void HostRuntime::send_control(net::Endpoint to, net::MessagePtr msg,
                               std::size_t bytes) {
  if (channel_) {
    channel_->send(to, std::move(msg), bytes);
  } else {
    engine_.network().send(endpoint_, to, std::move(msg), bytes);
  }
}

void HostRuntime::on_delivery(const net::Delivery& delivery) {
  if (const auto* batch =
          dynamic_cast<const EventBatchMessage*>(delivery.message.get())) {
    for (const WireEvent& event : batch->events) {
      auto it = slices_.find(event.to);
      if (it == slices_.end()) {
        ++dropped_events_;
        continue;
      }
      it->second->on_wire_event(event);
    }
    return;
  }
  handle_control(delivery);
}

void HostRuntime::handle_control(const net::Delivery& delivery) {
  const net::Message* msg = delivery.message.get();
  if (const auto* req = dynamic_cast<const CreateReplicaRequest*>(msg)) {
    handle_create_replica(*req);
  } else if (const auto* req =
                 dynamic_cast<const StartDuplicationRequest*>(msg)) {
    handle_start_duplication(*req);
  } else if (const auto* req = dynamic_cast<const FreezeRequest*>(msg)) {
    handle_freeze(*req);
  } else if (const auto* precopy = dynamic_cast<const PrecopyRequest*>(msg)) {
    handle_precopy(*precopy);
  } else if (const auto* pages =
                 dynamic_cast<const PrecopyStateMessage*>(msg)) {
    handle_precopy_state(*pages);
  } else if (const auto* transfer =
                 dynamic_cast<const StateTransferMessage*>(msg)) {
    handle_state_transfer(*transfer);
  } else if (const auto* update =
                 dynamic_cast<const DirectoryUpdateMessage*>(msg)) {
    handle_directory_update(*update);
  } else if (const auto* req = dynamic_cast<const TeardownRequest*>(msg)) {
    handle_teardown(*req);
  } else if (const auto* req =
                 dynamic_cast<const AbortMigrationRequest*>(msg)) {
    handle_abort_migration(*req);
  } else if (const auto* req = dynamic_cast<const AbortReplicaRequest*>(msg)) {
    handle_abort_replica(*req);
  } else if (const auto* absorb = dynamic_cast<const MergeAbsorbRequest*>(msg)) {
    SliceRuntime* survivor = slice(absorb->survivor);
    if (survivor == nullptr ||
        survivor->state() != SliceRuntime::State::kActive) {
      // The survivor died (or is mid-recovery); the coordinator re-drives
      // the absorb after its recovery completes.
      ESH_WARN << "HostRuntime: dropping absorb state without a survivor";
    } else {
      survivor->deliver_absorb_state(absorb->state, absorb->log);
    }
  } else if (const auto* notice =
                 dynamic_cast<const CheckpointNoticeMessage*>(msg)) {
    // Upstream backup truncation: each local upstream slice drops logged
    // events the checkpoint already covers — both its own channel's and
    // any adopted channel's of a merged-away origin.
    for (const auto& [upstream, watermark] : notice->processed) {
      auto it = slices_.find(upstream);
      if (it != slices_.end()) {
        it->second->truncate_log(notice->slice, watermark);
      }
    }
    // lint:allow(unordered-iteration): truncation is order-free
    for (auto& [slice_id, runtime] : slices_) {
      for (const auto& [upstream, watermark] : notice->processed) {
        runtime->truncate_adopted(upstream, notice->slice, watermark);
      }
    }
  } else if (const auto* restore =
                 dynamic_cast<const RestoreFromCheckpointMessage*>(msg)) {
    handle_restore(*restore);
  } else if (const auto* replay = dynamic_cast<const ReplayRequest*>(msg)) {
    // Sorted: replay send order serializes on this host's NIC.
    for (const SliceId slice_id : sorted_keys(slices_)) {
      SeqNo watermark = 0;
      for (const auto& [upstream, seq] : replay->processed) {
        if (upstream == slice_id) watermark = seq;
      }
      slices_.at(slice_id)->replay_log(replay->slice, watermark);
      // Adopted channels: any local slice may hold a merged-away
      // upstream's log and serves its replay under the origin's identity.
      for (const auto& [upstream, seq] : replay->processed) {
        if (upstream == slice_id) continue;
        slices_.at(slice_id)->replay_adopted(upstream, replay->slice, seq);
      }
    }
  } else {
    ESH_WARN << "HostRuntime: unknown control message";
  }
}

void HostRuntime::handle_restore(const RestoreFromCheckpointMessage& msg) {
  if (!slices_.contains(msg.slice)) {
    add_slice(msg.slice, SliceRuntime::State::kInactiveReplica);
  }
  SliceRuntime* replica = slice(msg.slice);
  if (replica->state() != SliceRuntime::State::kInactiveReplica) {
    // A duplicate restore (e.g. a retried recovery whose first attempt
    // succeeded late) must not clobber the live instance.
    ESH_WARN << "HostRuntime: ignoring restore for non-replica slice";
    return;
  }
  // Reuse the migration activation path: instantiate, deserialize, set the
  // channel watermarks, go live; replayed events arriving meanwhile buffer
  // in the replica and dedup against the checkpoint's vector.
  auto transfer = std::make_shared<StateTransferMessage>();
  transfer->migration = MigrationId{};  // not a migration
  transfer->slice = msg.slice;
  transfer->state = msg.state;
  transfer->processed = msg.processed;
  transfer->out_seqs = msg.out_seqs;
  transfer->log = msg.log;
  transfer->coverage_epoch = msg.coverage_epoch;
  transfer->frozen_at = engine_.simulator().now();
  transfer->reply_to = msg.reply_to;
  // Pending split/merge cut-over holds go in before the replica buffer
  // drains, so replayed post-cut events stay queued until the re-driven
  // capture or absorb releases them.
  replica->preinstall_holds(msg.holds);
  replica->activate(*transfer);
}

void HostRuntime::handle_create_replica(const CreateReplicaRequest& req) {
  add_slice(req.slice, SliceRuntime::State::kInactiveReplica);
  SliceRuntime* replica = slice(req.slice);
  // Replica instantiation (runtime structures + filtering library init)
  // costs CPU before the replica can accept state.
  const double cost = replica->handler().replica_init_units();
  const MigrationId migration = req.migration;
  const net::Endpoint reply_to = req.reply_to;
  cpu_.submit(req.slice, cluster::LockMode::kWrite, cost,
              [this, migration, reply_to] {
                auto ack = std::make_shared<CreateReplicaAck>();
                ack->migration = migration;
                send_control(reply_to, std::move(ack), 64);
              });
}

void HostRuntime::handle_start_duplication(const StartDuplicationRequest& req) {
  auto it = directory_.find(req.slice);
  if (it == directory_.end()) {
    throw std::logic_error{"start_duplication: unknown slice"};
  }
  const auto& cfg = engine_.static_config();
  const auto& target_op = cfg.op_of(req.slice);
  if (req.redirect) {
    // Park mode: output seqs are assigned at emit time, so events sitting in
    // an upstream flush buffer carry pre-flip numbers but would ship to the
    // replica once the flip lands — and the parked source would wait for
    // them at its freeze point forever. Drain those buffers to the primary
    // before flipping; the captured catch-up point is then exact.
    for (const SliceId slice_id : sorted_keys(slices_)) {
      const auto& info = cfg.info_of(slice_id);
      const bool upstream = std::find(target_op.upstream_ops.begin(),
                                      target_op.upstream_ops.end(),
                                      info.op_index) !=
                            target_op.upstream_ops.end();
      if (upstream) slices_.at(slice_id)->flush_outputs();
    }
  }
  it->second.shadow = req.shadow_host;
  it->second.redirect = req.redirect;

  // Ack once per local upstream slice, carrying its channel's duplication
  // start point.
  // Sorted: ack send order serializes on this host's NIC.
  for (const SliceId slice_id : sorted_keys(slices_)) {
    const auto& info = cfg.info_of(slice_id);
    const bool upstream =
        std::find(target_op.upstream_ops.begin(), target_op.upstream_ops.end(),
                  info.op_index) != target_op.upstream_ops.end();
    if (!upstream) continue;
    auto ack = std::make_shared<StartDuplicationAck>();
    ack->migration = req.migration;
    ack->upstream_slice = slice_id;
    ack->next_seq = slices_.at(slice_id)->next_seq_for(req.slice);
    send_control(req.reply_to, std::move(ack), 64);
  }
}

void HostRuntime::handle_freeze(const FreezeRequest& req) {
  SliceRuntime* target = slice(req.slice);
  if (target == nullptr) {
    throw std::logic_error{"freeze: slice not on this host"};
  }
  SliceRuntime::FreezeSpec spec{req.migration, req.catchup, req.dst_host,
                                req.reply_to};
  spec.delta = req.delta;
  target->request_freeze(std::move(spec));
}

void HostRuntime::handle_precopy(const PrecopyRequest& req) {
  SliceRuntime* target = slice(req.slice);
  if (target == nullptr ||
      target->state() != SliceRuntime::State::kActive) {
    // The migration aborted (or the freeze raced ahead) while this round
    // was in flight; the coordinator's abort matrix owns the cleanup.
    ESH_WARN << "HostRuntime: dropping pre-copy round for inactive slice";
    return;
  }
  target->run_precopy(req.migration, req.round, req.dst_host, req.reply_to);
}

void HostRuntime::handle_precopy_state(const PrecopyStateMessage& msg) {
  SliceRuntime* replica = slice(msg.slice);
  if (replica == nullptr ||
      replica->state() != SliceRuntime::State::kInactiveReplica) {
    // Leftover of an aborted migration; without a replica there is nobody
    // to patch (and nobody expecting the ack).
    ESH_WARN << "HostRuntime: dropping pre-copy state without a replica";
    return;
  }
  replica->store_precopy(msg);
}

void HostRuntime::handle_state_transfer(const StateTransferMessage& msg) {
  SliceRuntime* replica = slice(msg.slice);
  if (replica == nullptr ||
      replica->state() != SliceRuntime::State::kInactiveReplica) {
    // Leftover of an aborted migration: the replica was torn down before
    // the (in-flight) state arrived. The slice recovers from checkpoint.
    ESH_WARN << "HostRuntime: dropping state transfer without a replica";
    return;
  }
  replica->activate(msg);
}

void HostRuntime::handle_directory_update(const DirectoryUpdateMessage& msg) {
  directory_[msg.slice] = SliceLocation{msg.host, HostId{}};
  if (!msg.migration.valid() && msg.reset_channels) {
    // Recovery of a multi-input slice: it will regenerate its post-cut
    // output with fresh (possibly re-interleaved) sequence numbers. Rewind
    // every local input channel from it to the restored output base so the
    // regenerated stream is accepted.
    // lint:allow(unordered-iteration): local channel rewinds, order-free
    for (auto& [slice_id, runtime] : slices_) {
      SeqNo base = 1;  // bootstrap recovery regenerates from scratch
      for (const auto& [downstream, next] : msg.out_bases) {
        if (downstream == slice_id) base = next;
      }
      runtime->reset_channel(msg.slice, base);
    }
  }
  if (msg.reply_to.valid()) {
    auto ack = std::make_shared<DirectoryUpdateAck>();
    ack->migration = msg.migration;
    ack->from_host = host_id();
    send_control(msg.reply_to, std::move(ack), 64);
  }
}

void HostRuntime::handle_teardown(const TeardownRequest& req) {
  auto it = slices_.find(req.slice);
  if (it == slices_.end()) {
    throw std::logic_error{"teardown: slice not on this host"};
  }
  it->second->retire();
  if (cpu_.has_pending_work(req.slice)) {
    throw std::logic_error{"teardown: slice still has CPU work"};
  }
  cpu_.forget_slice(req.slice);
  last_slice_busy_us_.erase(req.slice);
  last_slice_net_bytes_.erase(req.slice);
  slices_.erase(it);
  auto ack = std::make_shared<TeardownAck>();
  ack->migration = req.migration;
  send_control(req.reply_to, std::move(ack), 64);
}

void HostRuntime::evict_slice(SliceId id) {
  auto it = slices_.find(id);
  if (it == slices_.end()) return;
  it->second->retire();
  if (!cpu_.has_pending_work(id)) {
    cpu_.forget_slice(id);
  }
  last_slice_busy_us_.erase(id);
  last_slice_net_bytes_.erase(id);
  // In-flight CPU jobs may still hold a pointer to the runtime; quarantine
  // it instead of destroying it.
  retired_slices_.push_back(std::move(it->second));
  slices_.erase(it);
}

void HostRuntime::handle_abort_migration(const AbortMigrationRequest& req) {
  SliceRuntime* target = slice(req.slice);
  bool resumed = false;
  bool thawed = false;
  if (target != nullptr) {
    resumed = target->unfreeze();
    if (!resumed && req.thaw_frozen &&
        target->state() == SliceRuntime::State::kFrozen) {
      // The frozen source is exact at its freeze watermark, so it resumes
      // in place; the coordinator replays the dropped suffix.
      target->thaw();
      resumed = true;
      thawed = true;
    }
    if (!resumed) {
      // Already frozen: every event since the freeze was dropped locally
      // (duplicated only to the now-dead replica), so the local copy is
      // stale. Evict it; the coordinator hands the slice to recovery.
      evict_slice(req.slice);
    }
  }
  auto ack = std::make_shared<AbortMigrationAck>();
  ack->migration = req.migration;
  ack->slice = req.slice;
  ack->resumed = resumed;
  ack->thawed = thawed;
  if (resumed && target != nullptr) {
    // Dispatch watermarks of the resumed slice: a stop-and-restart abort
    // replays the redirected suffix (lost with the dead replica) from the
    // upstream-backup logs above exactly these marks. Sorted: the ack's
    // contents must not depend on hash-table layout.
    for (const SliceId from : sorted_keys(target->in_)) {
      ack->processed.emplace_back(from, target->in_.at(from).last_dispatched);
    }
  }
  send_control(req.reply_to, std::move(ack), 64);
}

void HostRuntime::handle_abort_replica(const AbortReplicaRequest& req) {
  SliceRuntime* replica = slice(req.slice);
  const bool was_active =
      replica != nullptr && replica->state() == SliceRuntime::State::kActive;
  if (replica != nullptr && !was_active) {
    evict_slice(req.slice);
  }
  auto ack = std::make_shared<AbortReplicaAck>();
  ack->migration = req.migration;
  ack->slice = req.slice;
  ack->was_active = was_active;
  send_control(req.reply_to, std::move(ack), 64);
}

cluster::HostProbe HostRuntime::collect_probe(SimDuration window) {
  cluster::HostProbe probe;
  probe.host = host_id();
  probe.window_start = last_probe_time_;
  probe.window_end = engine_.simulator().now();
  probe.cpu = cpu_.utilization(last_host_busy_us_, window);
  last_host_busy_us_ = cpu_.busy_core_us_now();
  const double capacity = static_cast<double>(cpu_.spec().cores) *
                          static_cast<double>(window.count());
  const auto& cfg = engine_.static_config();
  // Sorted: the probe's slice vector feeds the enforcer's placement math.
  for (const SliceId id : sorted_keys(slices_)) {
    const auto& runtime = slices_.at(id);
    cluster::SliceProbe sp;
    sp.slice = id;
    sp.op = cfg.operators.at(cfg.info_of(id).op_index).id;
    const double busy = cpu_.slice_busy_core_us_now(id);
    sp.cpu = (busy - last_slice_busy_us_[id]) / capacity;
    last_slice_busy_us_[id] = busy;
    sp.state_bytes = runtime->handler().state_bytes();
    const std::size_t net_now = runtime->net_bytes_sent();
    // Per-slice NIC counters only grow; a shrink means the probe window
    // accounting went backwards.
    ESH_INVARIANT("engine", "probe-counters-monotonic",
                  net_now >= last_slice_net_bytes_[id],
                  ::esh::contracts::Detail{}
                      .slice(id)
                      .host(host_id())
                      .expected(last_slice_net_bytes_[id])
                      .actual(net_now));
    sp.net_bytes = net_now - last_slice_net_bytes_[id];
    last_slice_net_bytes_[id] = net_now;
    probe.slices.push_back(sp);
  }
  last_probe_time_ = probe.window_end;
  return probe;
}

void HostRuntime::enable_probes(net::Endpoint target, SimDuration interval) {
  probe_target_ = target;
  last_probe_time_ = engine_.simulator().now();
  last_host_busy_us_ = cpu_.busy_core_us_now();
  probe_timer_ = std::make_unique<sim::PeriodicTimer>(
      engine_.simulator(), interval, [this, interval] {
        auto msg = std::make_shared<ProbeMessage>();
        msg->probe = collect_probe(interval);
        const std::size_t bytes = 64 + 32 * msg->probe.slices.size();
        // Probes deliberately bypass the reliable channel: a retransmitted
        // heartbeat would mask exactly the silence (and the latency) the
        // failure detector exists to observe.
        engine_.network().send(endpoint_, probe_target_, std::move(msg),
                               bytes);
      });
}

void HostRuntime::disable_probes() { probe_timer_.reset(); }

}  // namespace esh::engine
