// Event model of the stream-processing engine. Events flow through a DAG
// of operators (paper §III); each event travels on a logical *channel*
// identified by the sending slice, carrying a per-channel sequence number
// assigned at emission. Sequence numbers are the backbone of the migration
// protocol: they let a replica discard events the original slice already
// processed and let receivers restore order across host moves.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/probes.hpp"
#include "common/types.hpp"
#include "net/network.hpp"

namespace esh::engine {

// Application payload carried by an event. Immutable and shared: broadcast
// to N slices costs one allocation.
struct Payload {
  virtual ~Payload() = default;
  // Serialized size used for network transfer accounting.
  [[nodiscard]] virtual std::size_t bytes() const = 0;
};
using PayloadPtr = std::shared_ptr<const Payload>;

// An event as it appears on the wire between two slices.
struct WireEvent {
  SliceId from;  // logical sending slice (channel key; stable across moves)
  SliceId to;    // logical destination slice
  SeqNo seq = kNoSeqNo;
  PayloadPtr payload;
};

// Channel key used for events injected from outside the DAG (publishers /
// subscribers pushing into source slices). External injection is sequenced
// like any upstream channel so the migration protocol's duplication and
// catch-up logic covers it: no push is lost while a source slice moves.
inline constexpr SliceId kExternalChannel{std::uint64_t{1} << 62};

// A flushed batch of events from one host to one destination slice's host.
// Batching amortizes per-message overhead and models the pipelined
// buffering of the real engine (the dominant component of steady-state
// notification delay).
struct EventBatchMessage final : net::Message {
  std::vector<WireEvent> events;
};

// ---- control plane ----------------------------------------------------------

// Control messages exchanged between the migration coordinator (manager
// host) and host runtimes. See engine/engine.cpp for the protocol flow.

struct CreateReplicaRequest final : net::Message {
  MigrationId migration;
  SliceId slice;
  net::Endpoint reply_to;
};

struct CreateReplicaAck final : net::Message {
  MigrationId migration;
};

// Sent to every host holding an upstream slice of the migrating slice:
// start duplicating events for `slice` to the shadow host.
struct StartDuplicationRequest final : net::Message {
  MigrationId migration;
  SliceId slice;        // migrating slice
  HostId shadow_host;   // where the replica lives
  net::Endpoint reply_to;
  // Park mode (stop-and-restart strategy): send events for `slice`
  // exclusively to the shadow host instead of mirroring them — the source
  // sees nothing past the park point and drains to a natural freeze.
  bool redirect = false;
};

// One ack per upstream slice: the next sequence number it will assign on
// its channel to the migrating slice. All events >= next_seq are duplicated.
struct StartDuplicationAck final : net::Message {
  MigrationId migration;
  SliceId upstream_slice;
  SeqNo next_seq = kNoSeqNo;
};

// Instructs the source host to freeze the slice once it has dispatched all
// events below the catch-up vector, then serialize and ship its state.
struct FreezeRequest final : net::Message {
  MigrationId migration;
  SliceId slice;
  // Catch-up vector: for each upstream channel, the first duplicated seq.
  std::vector<std::pair<SliceId, SeqNo>> catchup;
  HostId dst_host;
  net::Endpoint reply_to;
  // Incremental pre-copy: ship only the pages changed since the last
  // pre-copy round; the replica patches the baseline it already holds.
  bool delta = false;
};

// One contiguous run of changed bytes in a serialized slice image, at page
// granularity (EngineConfig::precopy_page_bytes). `offset` is the byte
// position in the full image, so patching needs no page-size agreement.
struct StatePage {
  std::size_t offset = 0;
  std::vector<std::byte> bytes;
};

// Coordinator -> source host: run one pre-copy round for `slice` — serialize
// its state while it keeps serving, diff against the previous round's image,
// and ship the dirty pages to `dst_host`.
struct PrecopyRequest final : net::Message {
  MigrationId migration;
  SliceId slice;
  std::size_t round = 0;  // 1-based
  HostId dst_host;
  net::Endpoint reply_to;  // coordinator endpoint, forwarded for the ack
};

// Source host -> destination host: the dirty pages of one pre-copy round
// (round 1 carries the full baseline). The replica patches its stored image.
struct PrecopyStateMessage final : net::Message {
  MigrationId migration;
  SliceId slice;
  std::size_t round = 0;
  std::size_t full_bytes = 0;  // size of the full image after this round
  std::vector<StatePage> pages;
  net::Endpoint reply_to;  // coordinator endpoint
};

// Destination host -> coordinator: the round's pages are applied. `bytes`
// is the payload size shipped, so the coordinator can stop early on an
// empty delta and account per-strategy transfer totals.
struct PrecopyAck final : net::Message {
  MigrationId migration;
  SliceId slice;
  std::size_t round = 0;
  std::size_t bytes = 0;
};

// Serialized slice state shipped from the old to the new host. Its size
// drives the transfer time on the simulated network.
struct StateTransferMessage final : net::Message {
  MigrationId migration;
  SliceId slice;
  // Full serialized image, or null when `delta` is set.
  std::shared_ptr<const std::vector<std::byte>> state;
  // Incremental pre-copy final transfer: only the pages dirtied since the
  // last pre-copy round travel; the replica rebuilds the full image of
  // `full_bytes` bytes from its stored baseline plus `pages`.
  bool delta = false;
  std::size_t full_bytes = 0;
  std::vector<StatePage> pages;
  // Timestamp vector: per channel, last sequence number dispatched by the
  // original slice. The replica skips queued events at or below it.
  std::vector<std::pair<SliceId, SeqNo>> processed;
  // Output counters: per downstream slice, next sequence number to assign.
  std::vector<std::pair<SliceId, SeqNo>> out_seqs;
  // Retained output backlog (the upstream-backup log, flattened): events
  // downstream slices have not checkpointed past. It moves with the state
  // so the new instance can serve replay requests for them — without it, a
  // later downstream failure could ask for events only the old (gone)
  // instance had logged.
  std::vector<WireEvent> log;
  SimTime frozen_at{};
  // Coverage epoch of the frozen slice (preserved across the move so the
  // destination's checkpoints keep proving split/merge captures durable).
  std::uint64_t coverage_epoch = 0;
  net::Endpoint reply_to;
};

struct ActivatedAck final : net::Message {
  MigrationId migration;
  SliceId slice;
  SimTime frozen_at{};
  SimTime activated_at{};
  std::size_t state_bytes = 0;
  // Bytes the final StateTransferMessage actually shipped: equal to
  // `state_bytes` for a full transfer, the dirty-page total for a delta one.
  std::size_t transfer_bytes = 0;
};

// Broadcast after activation: the slice now lives (only) on `host`;
// duplication for it stops.
struct DirectoryUpdateMessage final : net::Message {
  MigrationId migration;  // invalid for non-migration updates
  SliceId slice;
  HostId host;
  net::Endpoint reply_to;  // invalid when no ack needed
  // Recovery updates only (invalid migration id). A recovered slice with a
  // single input channel replays it in order and regenerates exactly the
  // original (sequence, content) stream, so downstream per-channel
  // deduplication stays correct. With two or more input channels the
  // replayed inputs may interleave differently than the original run — the
  // same sequence number can carry different content — and the engine sets
  // `reset_channels`: downstreams rewind the channel from `slice` to its
  // restored output base (absent from `out_bases` = bootstrap = base 1)
  // and accept the regenerated stream afresh. Content-level duplicates of
  // the re-delivered prefix are absorbed by idempotent operator handlers.
  bool reset_channels = false;
  std::vector<std::pair<SliceId, SeqNo>> out_bases;
};

struct DirectoryUpdateAck final : net::Message {
  MigrationId migration;
  HostId from_host;
};

struct TeardownRequest final : net::Message {
  MigrationId migration;
  SliceId slice;
  net::Endpoint reply_to;
};

// ---- migration abort (destination or source host died mid-flight) ----

// Sent to the *source* host when the destination died mid-migration: resume
// the slice if it has not shipped its state yet (the replica and its
// buffered duplicates died with the destination).
struct AbortMigrationRequest final : net::Message {
  MigrationId migration;
  SliceId slice;
  net::Endpoint reply_to;
  // Stop-and-restart: a fully-frozen source may thaw back to active (it
  // froze at its exact park point; the redirected suffix replays from the
  // upstream logs). Buffered-replay leaves this false — there the frozen
  // state belongs to the replica and the slice must go through recovery.
  bool thaw_frozen = false;
};

// `resumed` is false when the slice had already frozen and shipped its
// state and the request did not allow a thaw: the local copy is treated as
// stale and the slice must go through recovery.
struct AbortMigrationAck final : net::Message {
  MigrationId migration;
  SliceId slice;
  bool resumed = false;
  // The slice resumed from a COMPLETED freeze (thaw_frozen granted): every
  // event above the dispatch watermarks was dropped locally while frozen
  // and must be replayed, whichever strategy was aborting.
  bool thawed = false;
  // When resumed: the slice's per-channel dispatch watermarks. A
  // stop-and-restart abort uses them to replay the redirected suffix (events
  // parked at the dead replica) from the upstream-backup logs; a thawed
  // pre-copy abort replays the suffix dropped during the final freeze.
  std::vector<std::pair<SliceId, SeqNo>> processed;
};

// Sent to the *destination* host when the source died mid-migration: tear
// down the inactive replica. If the state transfer raced ahead and the
// replica already activated, it reports so and stays — the migration
// actually completed.
struct AbortReplicaRequest final : net::Message {
  MigrationId migration;
  SliceId slice;
  net::Endpoint reply_to;
};

struct AbortReplicaAck final : net::Message {
  MigrationId migration;
  SliceId slice;
  bool was_active = false;
};

struct TeardownAck final : net::Message {
  MigrationId migration;
};

// ---- slice split / merge (fine-grained elasticity) ----
//
// A split refines one M slice's key coverage by one bit: the parent keeps
// half, a fresh child slice takes the other half. The coordinator flips the
// routing tables atomically (the cut-over), the parent drains its channels
// to the captured cut-over sequence numbers, splits off the child's half of
// its state in one write job, and the child activates from that state like
// a checkpoint restore. A merge is the inverse: the retiree drains, ships
// its full state to the coordinator, and the survivor absorbs it. See
// PROTOCOL.md for the full sequence.

// Parent host -> coordinator: the drained parent captured the child's half
// of its state. `moved` is the number of subscriptions split off;
// `coverage_epoch` is the parent's epoch after the capture (checkpoints at
// or past it prove the capture is durable).
struct SplitStateMessage final : net::Message {
  MigrationId transition;
  SliceId parent;
  SliceId child;
  std::shared_ptr<const std::vector<std::byte>> state;
  std::size_t moved = 0;
  std::uint64_t coverage_epoch = 0;
};

// Retiree host -> coordinator: the drained retiree serialized its full
// state and upstream-backup log (flattened, adopted origins included).
struct MergeStateMessage final : net::Message {
  MigrationId transition;
  SliceId retiree;
  std::shared_ptr<const std::vector<std::byte>> state;
  std::vector<WireEvent> log;
};

// Coordinator -> survivor host: absorb the retiree's captured state. The
// survivor may still be draining to its cut-over; the absorb runs once both
// the drain and this state have arrived.
struct MergeAbsorbRequest final : net::Message {
  MigrationId transition;
  SliceId survivor;
  SliceId retiree;
  std::shared_ptr<const std::vector<std::byte>> state;
  std::vector<WireEvent> log;
  net::Endpoint reply_to;
};

struct MergeAbsorbAck final : net::Message {
  MigrationId transition;
  SliceId survivor;
  std::uint64_t coverage_epoch = 0;
};

// Periodic probe from a host runtime to the manager (paper §IV-B).
struct ProbeMessage final : net::Message {
  cluster::HostProbe probe;
};

// ---- passive replication ------------------------------------------------------

// Periodic checkpoint shipped to the standby store on the manager host.
struct CheckpointMessage final : net::Message {
  SliceId slice;
  std::shared_ptr<const std::vector<std::byte>> state;
  std::vector<std::pair<SliceId, SeqNo>> processed;  // input watermarks
  std::vector<std::pair<SliceId, SeqNo>> out_seqs;   // output counters
  // Coverage epoch of the slice at the cut: a checkpoint at or past a
  // pending split/merge capture's epoch proves the captured state is
  // durable, so a later recovery must not re-run the capture.
  std::uint64_t coverage_epoch = 0;
  // Retained output backlog at the cut (see StateTransferMessage::log):
  // needed when this slice and a downstream fail together — the restored
  // instance must be able to replay events it emitted before the cut,
  // which it cannot regenerate (they precede its own watermarks).
  std::vector<WireEvent> log;
};

// Broadcast after a checkpoint is stored: upstreams may drop logged events
// at or below the watermark for this slice.
struct CheckpointNoticeMessage final : net::Message {
  SliceId slice;
  std::vector<std::pair<SliceId, SeqNo>> processed;
};

// Restores a lost slice on a new host from its last checkpoint.
struct RestoreFromCheckpointMessage final : net::Message {
  SliceId slice;
  std::shared_ptr<const std::vector<std::byte>> state;
  std::vector<std::pair<SliceId, SeqNo>> processed;
  std::vector<std::pair<SliceId, SeqNo>> out_seqs;
  std::vector<WireEvent> log;  // checkpointed output backlog
  std::uint64_t coverage_epoch = 0;
  // Cut-over holds of a pending split/merge the restored slice is mid-way
  // through: installed before the replica buffer drains, so replayed events
  // at or past a hold stay queued until the re-driven capture releases them.
  std::vector<std::pair<SliceId, SeqNo>> holds;
  net::Endpoint reply_to;
};

struct RestoredAck final : net::Message {
  SliceId slice;
};

// Asks every upstream slice on the receiving host to re-send its logged
// events for `slice` above the checkpoint watermarks.
struct ReplayRequest final : net::Message {
  SliceId slice;
  std::vector<std::pair<SliceId, SeqNo>> processed;
};

}  // namespace esh::engine
