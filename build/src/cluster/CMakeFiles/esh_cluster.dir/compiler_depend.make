# Empty compiler generated dependencies file for esh_cluster.
# This may be replaced when dependencies are built.
