file(REMOVE_RECURSE
  "CMakeFiles/esh_cluster.dir/host.cpp.o"
  "CMakeFiles/esh_cluster.dir/host.cpp.o.d"
  "CMakeFiles/esh_cluster.dir/iaas.cpp.o"
  "CMakeFiles/esh_cluster.dir/iaas.cpp.o.d"
  "libesh_cluster.a"
  "libesh_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esh_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
