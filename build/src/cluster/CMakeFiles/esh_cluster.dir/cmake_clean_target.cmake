file(REMOVE_RECURSE
  "libesh_cluster.a"
)
