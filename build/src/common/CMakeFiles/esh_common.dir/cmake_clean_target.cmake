file(REMOVE_RECURSE
  "libesh_common.a"
)
