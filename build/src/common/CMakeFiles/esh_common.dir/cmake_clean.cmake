file(REMOVE_RECURSE
  "CMakeFiles/esh_common.dir/log.cpp.o"
  "CMakeFiles/esh_common.dir/log.cpp.o.d"
  "CMakeFiles/esh_common.dir/rng.cpp.o"
  "CMakeFiles/esh_common.dir/rng.cpp.o.d"
  "CMakeFiles/esh_common.dir/serde.cpp.o"
  "CMakeFiles/esh_common.dir/serde.cpp.o.d"
  "CMakeFiles/esh_common.dir/stats.cpp.o"
  "CMakeFiles/esh_common.dir/stats.cpp.o.d"
  "libesh_common.a"
  "libesh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
