# Empty compiler generated dependencies file for esh_common.
# This may be replaced when dependencies are built.
