file(REMOVE_RECURSE
  "CMakeFiles/esh_filter.dir/aspe.cpp.o"
  "CMakeFiles/esh_filter.dir/aspe.cpp.o.d"
  "CMakeFiles/esh_filter.dir/matcher.cpp.o"
  "CMakeFiles/esh_filter.dir/matcher.cpp.o.d"
  "CMakeFiles/esh_filter.dir/matrix.cpp.o"
  "CMakeFiles/esh_filter.dir/matrix.cpp.o.d"
  "libesh_filter.a"
  "libesh_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esh_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
