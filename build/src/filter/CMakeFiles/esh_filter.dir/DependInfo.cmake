
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/aspe.cpp" "src/filter/CMakeFiles/esh_filter.dir/aspe.cpp.o" "gcc" "src/filter/CMakeFiles/esh_filter.dir/aspe.cpp.o.d"
  "/root/repo/src/filter/matcher.cpp" "src/filter/CMakeFiles/esh_filter.dir/matcher.cpp.o" "gcc" "src/filter/CMakeFiles/esh_filter.dir/matcher.cpp.o.d"
  "/root/repo/src/filter/matrix.cpp" "src/filter/CMakeFiles/esh_filter.dir/matrix.cpp.o" "gcc" "src/filter/CMakeFiles/esh_filter.dir/matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/esh_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
