file(REMOVE_RECURSE
  "libesh_filter.a"
)
