# Empty dependencies file for esh_filter.
# This may be replaced when dependencies are built.
