file(REMOVE_RECURSE
  "CMakeFiles/esh_net.dir/network.cpp.o"
  "CMakeFiles/esh_net.dir/network.cpp.o.d"
  "libesh_net.a"
  "libesh_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esh_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
