file(REMOVE_RECURSE
  "libesh_net.a"
)
