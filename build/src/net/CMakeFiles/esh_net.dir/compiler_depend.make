# Empty compiler generated dependencies file for esh_net.
# This may be replaced when dependencies are built.
