
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coord/client.cpp" "src/coord/CMakeFiles/esh_coord.dir/client.cpp.o" "gcc" "src/coord/CMakeFiles/esh_coord.dir/client.cpp.o.d"
  "/root/repo/src/coord/coord.cpp" "src/coord/CMakeFiles/esh_coord.dir/coord.cpp.o" "gcc" "src/coord/CMakeFiles/esh_coord.dir/coord.cpp.o.d"
  "/root/repo/src/coord/recipes.cpp" "src/coord/CMakeFiles/esh_coord.dir/recipes.cpp.o" "gcc" "src/coord/CMakeFiles/esh_coord.dir/recipes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
