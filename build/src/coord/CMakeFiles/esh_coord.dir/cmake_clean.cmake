file(REMOVE_RECURSE
  "CMakeFiles/esh_coord.dir/client.cpp.o"
  "CMakeFiles/esh_coord.dir/client.cpp.o.d"
  "CMakeFiles/esh_coord.dir/coord.cpp.o"
  "CMakeFiles/esh_coord.dir/coord.cpp.o.d"
  "CMakeFiles/esh_coord.dir/recipes.cpp.o"
  "CMakeFiles/esh_coord.dir/recipes.cpp.o.d"
  "libesh_coord.a"
  "libesh_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esh_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
