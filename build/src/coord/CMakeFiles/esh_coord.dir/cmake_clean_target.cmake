file(REMOVE_RECURSE
  "libesh_coord.a"
)
