# Empty compiler generated dependencies file for esh_coord.
# This may be replaced when dependencies are built.
