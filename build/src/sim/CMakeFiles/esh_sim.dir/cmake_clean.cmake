file(REMOVE_RECURSE
  "CMakeFiles/esh_sim.dir/simulator.cpp.o"
  "CMakeFiles/esh_sim.dir/simulator.cpp.o.d"
  "libesh_sim.a"
  "libesh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
