file(REMOVE_RECURSE
  "libesh_sim.a"
)
