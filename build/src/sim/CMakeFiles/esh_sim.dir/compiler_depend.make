# Empty compiler generated dependencies file for esh_sim.
# This may be replaced when dependencies are built.
