file(REMOVE_RECURSE
  "CMakeFiles/esh_pubsub.dir/operators.cpp.o"
  "CMakeFiles/esh_pubsub.dir/operators.cpp.o.d"
  "CMakeFiles/esh_pubsub.dir/streamhub.cpp.o"
  "CMakeFiles/esh_pubsub.dir/streamhub.cpp.o.d"
  "libesh_pubsub.a"
  "libesh_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esh_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
