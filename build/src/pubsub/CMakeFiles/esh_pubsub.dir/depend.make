# Empty dependencies file for esh_pubsub.
# This may be replaced when dependencies are built.
