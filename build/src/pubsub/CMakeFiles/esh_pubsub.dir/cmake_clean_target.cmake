file(REMOVE_RECURSE
  "libesh_pubsub.a"
)
