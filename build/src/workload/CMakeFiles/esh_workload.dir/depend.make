# Empty dependencies file for esh_workload.
# This may be replaced when dependencies are built.
