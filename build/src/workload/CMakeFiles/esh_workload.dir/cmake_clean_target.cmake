file(REMOVE_RECURSE
  "libesh_workload.a"
)
