file(REMOVE_RECURSE
  "CMakeFiles/esh_workload.dir/driver.cpp.o"
  "CMakeFiles/esh_workload.dir/driver.cpp.o.d"
  "CMakeFiles/esh_workload.dir/generator.cpp.o"
  "CMakeFiles/esh_workload.dir/generator.cpp.o.d"
  "CMakeFiles/esh_workload.dir/oracle.cpp.o"
  "CMakeFiles/esh_workload.dir/oracle.cpp.o.d"
  "CMakeFiles/esh_workload.dir/schedule.cpp.o"
  "CMakeFiles/esh_workload.dir/schedule.cpp.o.d"
  "libesh_workload.a"
  "libesh_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esh_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
