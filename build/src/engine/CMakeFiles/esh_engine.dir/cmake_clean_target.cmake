file(REMOVE_RECURSE
  "libesh_engine.a"
)
