file(REMOVE_RECURSE
  "CMakeFiles/esh_engine.dir/engine.cpp.o"
  "CMakeFiles/esh_engine.dir/engine.cpp.o.d"
  "CMakeFiles/esh_engine.dir/host_runtime.cpp.o"
  "CMakeFiles/esh_engine.dir/host_runtime.cpp.o.d"
  "libesh_engine.a"
  "libesh_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esh_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
