# Empty dependencies file for esh_engine.
# This may be replaced when dependencies are built.
