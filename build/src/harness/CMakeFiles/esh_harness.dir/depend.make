# Empty dependencies file for esh_harness.
# This may be replaced when dependencies are built.
