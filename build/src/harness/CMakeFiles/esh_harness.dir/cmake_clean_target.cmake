file(REMOVE_RECURSE
  "libesh_harness.a"
)
