file(REMOVE_RECURSE
  "CMakeFiles/esh_harness.dir/chaos.cpp.o"
  "CMakeFiles/esh_harness.dir/chaos.cpp.o.d"
  "CMakeFiles/esh_harness.dir/testbed.cpp.o"
  "CMakeFiles/esh_harness.dir/testbed.cpp.o.d"
  "libesh_harness.a"
  "libesh_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esh_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
