file(REMOVE_RECURSE
  "libesh_elastic.a"
)
