# Empty dependencies file for esh_elastic.
# This may be replaced when dependencies are built.
