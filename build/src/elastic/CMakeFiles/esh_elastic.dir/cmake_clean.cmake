file(REMOVE_RECURSE
  "CMakeFiles/esh_elastic.dir/enforcer.cpp.o"
  "CMakeFiles/esh_elastic.dir/enforcer.cpp.o.d"
  "CMakeFiles/esh_elastic.dir/failure_detector.cpp.o"
  "CMakeFiles/esh_elastic.dir/failure_detector.cpp.o.d"
  "CMakeFiles/esh_elastic.dir/manager.cpp.o"
  "CMakeFiles/esh_elastic.dir/manager.cpp.o.d"
  "CMakeFiles/esh_elastic.dir/threshold_policy.cpp.o"
  "CMakeFiles/esh_elastic.dir/threshold_policy.cpp.o.d"
  "libesh_elastic.a"
  "libesh_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esh_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
