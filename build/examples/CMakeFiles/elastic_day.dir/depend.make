# Empty dependencies file for elastic_day.
# This may be replaced when dependencies are built.
