file(REMOVE_RECURSE
  "CMakeFiles/elastic_day.dir/elastic_day.cpp.o"
  "CMakeFiles/elastic_day.dir/elastic_day.cpp.o.d"
  "elastic_day"
  "elastic_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
