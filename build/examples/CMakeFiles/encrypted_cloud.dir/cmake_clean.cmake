file(REMOVE_RECURSE
  "CMakeFiles/encrypted_cloud.dir/encrypted_cloud.cpp.o"
  "CMakeFiles/encrypted_cloud.dir/encrypted_cloud.cpp.o.d"
  "encrypted_cloud"
  "encrypted_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
