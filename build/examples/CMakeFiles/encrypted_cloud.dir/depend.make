# Empty dependencies file for encrypted_cloud.
# This may be replaced when dependencies are built.
