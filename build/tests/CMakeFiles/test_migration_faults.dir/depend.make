# Empty dependencies file for test_migration_faults.
# This may be replaced when dependencies are built.
