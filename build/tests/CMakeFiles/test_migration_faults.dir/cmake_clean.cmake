file(REMOVE_RECURSE
  "CMakeFiles/test_migration_faults.dir/test_migration_faults.cpp.o"
  "CMakeFiles/test_migration_faults.dir/test_migration_faults.cpp.o.d"
  "test_migration_faults"
  "test_migration_faults.pdb"
  "test_migration_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_migration_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
