
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_chaos.cpp" "tests/CMakeFiles/test_chaos.dir/test_chaos.cpp.o" "gcc" "tests/CMakeFiles/test_chaos.dir/test_chaos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/esh_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/esh_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/elastic/CMakeFiles/esh_elastic.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/esh_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/esh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/esh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/esh_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/esh_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/esh_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/esh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
