# Empty dependencies file for test_recipes.
# This may be replaced when dependencies are built.
