file(REMOVE_RECURSE
  "CMakeFiles/test_recipes.dir/test_recipes.cpp.o"
  "CMakeFiles/test_recipes.dir/test_recipes.cpp.o.d"
  "test_recipes"
  "test_recipes.pdb"
  "test_recipes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recipes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
