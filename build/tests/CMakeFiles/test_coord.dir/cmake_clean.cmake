file(REMOVE_RECURSE
  "CMakeFiles/test_coord.dir/test_coord.cpp.o"
  "CMakeFiles/test_coord.dir/test_coord.cpp.o.d"
  "test_coord"
  "test_coord.pdb"
  "test_coord[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
