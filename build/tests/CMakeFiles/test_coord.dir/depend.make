# Empty dependencies file for test_coord.
# This may be replaced when dependencies are built.
