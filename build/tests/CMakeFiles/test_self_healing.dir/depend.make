# Empty dependencies file for test_self_healing.
# This may be replaced when dependencies are built.
