file(REMOVE_RECURSE
  "CMakeFiles/test_self_healing.dir/test_self_healing.cpp.o"
  "CMakeFiles/test_self_healing.dir/test_self_healing.cpp.o.d"
  "test_self_healing"
  "test_self_healing.pdb"
  "test_self_healing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_self_healing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
