# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_coord[1]_include.cmake")
include("/root/repo/build/tests/test_filter[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_pubsub[1]_include.cmake")
include("/root/repo/build/tests/test_elastic[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_recipes[1]_include.cmake")
include("/root/repo/build/tests/test_replication[1]_include.cmake")
include("/root/repo/build/tests/test_migration_faults[1]_include.cmake")
include("/root/repo/build/tests/test_self_healing[1]_include.cmake")
include("/root/repo/build/tests/test_chaos[1]_include.cmake")
