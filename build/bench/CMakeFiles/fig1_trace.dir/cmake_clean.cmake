file(REMOVE_RECURSE
  "CMakeFiles/fig1_trace.dir/fig1_trace.cpp.o"
  "CMakeFiles/fig1_trace.dir/fig1_trace.cpp.o.d"
  "fig1_trace"
  "fig1_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
