file(REMOVE_RECURSE
  "CMakeFiles/micro_enforcer.dir/micro_enforcer.cpp.o"
  "CMakeFiles/micro_enforcer.dir/micro_enforcer.cpp.o.d"
  "micro_enforcer"
  "micro_enforcer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_enforcer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
