# Empty dependencies file for micro_enforcer.
# This may be replaced when dependencies are built.
