# Empty dependencies file for fig7_migration_delay.
# This may be replaced when dependencies are built.
