file(REMOVE_RECURSE
  "CMakeFiles/fig7_migration_delay.dir/fig7_migration_delay.cpp.o"
  "CMakeFiles/fig7_migration_delay.dir/fig7_migration_delay.cpp.o.d"
  "fig7_migration_delay"
  "fig7_migration_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_migration_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
