file(REMOVE_RECURSE
  "CMakeFiles/fig9_trace_elastic.dir/fig9_trace_elastic.cpp.o"
  "CMakeFiles/fig9_trace_elastic.dir/fig9_trace_elastic.cpp.o.d"
  "fig9_trace_elastic"
  "fig9_trace_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_trace_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
