# Empty dependencies file for fig9_trace_elastic.
# This may be replaced when dependencies are built.
