file(REMOVE_RECURSE
  "CMakeFiles/fig_recovery.dir/fig_recovery.cpp.o"
  "CMakeFiles/fig_recovery.dir/fig_recovery.cpp.o.d"
  "fig_recovery"
  "fig_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
