# Empty dependencies file for fig_recovery.
# This may be replaced when dependencies are built.
