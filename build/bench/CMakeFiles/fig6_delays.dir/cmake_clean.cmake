file(REMOVE_RECURSE
  "CMakeFiles/fig6_delays.dir/fig6_delays.cpp.o"
  "CMakeFiles/fig6_delays.dir/fig6_delays.cpp.o.d"
  "fig6_delays"
  "fig6_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
