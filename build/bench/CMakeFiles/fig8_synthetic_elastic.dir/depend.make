# Empty dependencies file for fig8_synthetic_elastic.
# This may be replaced when dependencies are built.
