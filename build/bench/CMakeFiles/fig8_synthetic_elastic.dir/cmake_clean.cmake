file(REMOVE_RECURSE
  "CMakeFiles/fig8_synthetic_elastic.dir/fig8_synthetic_elastic.cpp.o"
  "CMakeFiles/fig8_synthetic_elastic.dir/fig8_synthetic_elastic.cpp.o.d"
  "fig8_synthetic_elastic"
  "fig8_synthetic_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_synthetic_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
