file(REMOVE_RECURSE
  "CMakeFiles/table1_migration.dir/table1_migration.cpp.o"
  "CMakeFiles/table1_migration.dir/table1_migration.cpp.o.d"
  "table1_migration"
  "table1_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
