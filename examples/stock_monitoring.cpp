// Stock-market monitoring (the paper's motivating application, §I).
//
// Publishers are stock exchanges emitting ticks with four attributes
// (normalized price, volume, daily change, volatility); subscribers
// register investment-strategy filters ("notify me when volatility is high
// and the price dips"). The tick rate follows the synthetic Frankfurt
// curve around the 9:00 opening surge, compressed in time.
//
// Run: ./build/examples/stock_monitoring
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "cluster/host.hpp"
#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "filter/matcher.hpp"
#include "net/network.hpp"
#include "pubsub/streamhub.hpp"
#include "sim/simulator.hpp"
#include "workload/driver.hpp"
#include "workload/schedule.hpp"

int main() {
  using namespace esh;

  sim::Simulator simulator;
  net::Network network{simulator};
  std::vector<std::unique_ptr<cluster::Host>> hosts;
  engine::Engine engine{simulator, network, HostId{100}, {}, 5};
  for (std::uint64_t h = 1; h <= 4; ++h) {
    hosts.push_back(std::make_unique<cluster::Host>(simulator, HostId{h}));
    engine.add_host(*hosts.back());
  }

  pubsub::StreamHubParams params;
  params.source_slices = 1;
  params.ap_slices = 2;
  params.m_slices = 4;
  params.ep_slices = 2;
  params.sink_slices = 1;
  params.matcher_factory = [](std::size_t) {
    return std::make_unique<filter::CountingIndexMatcher>();
  };
  pubsub::StreamHub hub{engine, params};
  std::vector<HostId> workers{HostId{2}, HostId{3}, HostId{4}};
  hub.deploy({{"source", {HostId{1}}},
              {"sink", {HostId{1}}},
              {"AP", workers},
              {"M", workers},
              {"EP", workers}});

  // Investment strategies as content filters over
  // (price, volume, change, volatility), all normalized to [0, 1].
  struct Strategy {
    const char* name;
    filter::Subscription sub;
  };
  auto strategy = [](std::uint64_t id, const char* name, filter::Range price,
                     filter::Range volume, filter::Range change,
                     filter::Range volatility) {
    Strategy s;
    s.name = name;
    s.sub.id = SubscriptionId{id};
    s.sub.subscriber = SubscriberId{id};
    s.sub.predicates = {price, volume, change, volatility};
    return s;
  };
  std::vector<Strategy> strategies{
      strategy(1, "dip-buyer        (price<0.3, change<0.4)",
               {0.0, 0.3}, {0.0, 1.0}, {0.0, 0.4}, {0.0, 1.0}),
      strategy(2, "momentum         (change>0.7, volume>0.5)",
               {0.0, 1.0}, {0.5, 1.0}, {0.7, 1.0}, {0.0, 1.0}),
      strategy(3, "volatility-hawk  (volatility>0.8)",
               {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}, {0.8, 1.0}),
      strategy(4, "blue-chip-watch  (price>0.6, volatility<0.3)",
               {0.6, 1.0}, {0.0, 1.0}, {0.0, 1.0}, {0.0, 0.3}),
      strategy(5, "everything       (no constraints)",
               {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}),
  };
  for (const auto& s : strategies) {
    hub.subscribe(filter::AnySubscription{s.sub});
  }
  simulator.run_until(simulator.now() + seconds(1));

  // Tick feed: the morning around the 9:00 open, 60x compressed (2 hours
  // of trading in 2 simulated minutes), scaled to 40 ticks/s peak.
  workload::FrankfurtTrace::Config trace;
  trace.start_hour = 8.5;
  trace.end_hour = 10.5;
  trace.speedup = 60.0;
  trace.peak_rate = 40.0;
  trace.seed = 12;
  auto schedule = std::make_shared<workload::FrankfurtTrace>(trace);

  Rng market{2026};
  std::uint64_t next_tick = 1;
  workload::PublicationDriver feed{
      simulator, schedule,
      [&] {
        filter::Publication tick;
        tick.id = PublicationId{next_tick++};
        tick.attributes = {market.next_double(), market.next_double(),
                           market.next_double(), market.next_double()};
        hub.publish(filter::AnyPublication{tick});
      },
      7};
  feed.start();
  simulator.run_until(simulator.now() + schedule->duration() + seconds(5));

  std::printf("ticks published:  %llu\n",
              static_cast<unsigned long long>(feed.published()));
  std::printf("ticks delivered:  %llu\n",
              static_cast<unsigned long long>(
                  hub.collector()->publications_completed()));
  std::printf("notifications:    %llu\n",
              static_cast<unsigned long long>(hub.collector()->notifications()));
  std::printf("median delay:     %.0f ms\n\n",
              hub.collector()->delays_ms().percentile(50));
  std::printf("expected hit rates per strategy (uniform synthetic ticks):\n");
  for (const auto& s : strategies) {
    double rate = 1.0;
    for (const auto& p : s.sub.predicates) rate *= p.width();
    std::printf("  %-45s ~%5.1f%% of ticks\n", s.name, rate * 100.0);
  }
  return 0;
}
