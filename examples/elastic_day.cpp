// Elastic scaling demo: a compressed "day" of load against a fully managed
// e-STREAMHUB deployment. The manager watches host probes and enforces the
// elasticity policy: hosts are allocated when the average CPU exceeds the
// high watermark and released when load fades, with slice migrations
// keeping the service uninterrupted.
//
// A scaled-down cluster (weak cores) keeps the demo quick while exercising
// exactly the production code paths.
//
// Run: ./build/examples/elastic_day
#include <cstdio>
#include <memory>

#include "harness/testbed.hpp"

int main() {
  using namespace esh;

  harness::TestbedConfig config;
  config.worker_hosts = 1;  // starts on a single engine host
  config.io_hosts = 2;
  config.workload.total_subscriptions = 20'000;
  config.workload.m_slices = 8;
  config.ap_slices = 4;
  config.ep_slices = 4;
  config.source_slices = 2;
  config.sink_slices = 2;
  config.iaas.host_spec.units_per_second = 1e5;  // weak demo cores
  config.iaas.boot_delay = seconds(1);
  config.engine.probe_interval = seconds(2);
  config.manager.policy.grace = seconds(15);
  config.with_manager = true;
  config.seed = 3;
  harness::Testbed bed{config};

  std::printf("storing %zu encrypted subscriptions...\n",
              config.workload.total_subscriptions);
  bed.store_subscriptions(config.workload.total_subscriptions);

  // A compressed day: load ramps up, holds, then fades.
  auto schedule = std::make_shared<workload::TrapezoidRate>(
      60.0, seconds(150), seconds(120), seconds(150));
  auto driver = bed.drive(schedule);

  std::printf("\n%8s %8s %8s %10s %12s\n", "t(s)", "pub/s", "hosts",
              "avg-cpu", "migrations");
  std::uint64_t last_sent = 0;
  for (int step = 0; step < 40; ++step) {
    bed.run_for(seconds(15));
    const auto sent = bed.hub().publications_sent();
    const double rate = static_cast<double>(sent - last_sent) / 15.0;
    last_sent = sent;
    const auto& history = bed.manager()->load_history();
    const double cpu = history.empty() ? 0.0 : history.back().avg_cpu;
    std::printf("%8.0f %8.1f %8zu %9.0f%% %12zu\n",
                to_seconds(bed.simulator().now()), rate,
                bed.manager()->managed_host_count(), cpu * 100.0,
                bed.manager()->migrations().size());
  }
  driver->stop();

  std::printf("\npublications: %llu, notifications: %llu\n",
              static_cast<unsigned long long>(
                  bed.delays().publications_completed()),
              static_cast<unsigned long long>(bed.delays().notifications()));
  std::printf("median delay: %.0f ms, p99: %.0f ms\n",
              bed.delays().delays_ms().percentile(50),
              bed.delays().delays_ms().percentile(99));
  std::printf("migrations executed: %zu, plans: %llu\n",
              bed.manager()->migrations().size(),
              static_cast<unsigned long long>(bed.manager()->plans_executed()));
  return 0;
}
