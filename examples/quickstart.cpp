// Quickstart: the smallest useful e-STREAMHUB deployment.
//
// Builds an emulated 3-host cluster, deploys the pub/sub engine with a
// plain-text content-based filter, registers a few subscriptions, and
// publishes events. Demonstrates the basic publish/subscribe API and the
// notification delay measurement.
//
// Run: ./build/examples/quickstart
#include <cstdio>

#include "cluster/host.hpp"
#include "engine/engine.hpp"
#include "filter/matcher.hpp"
#include "net/network.hpp"
#include "pubsub/streamhub.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace esh;

  // 1. The emulated cluster: a simulator, a network, and three 8-core
  //    hosts (one for I/O, two for the engine operators).
  sim::Simulator simulator;
  net::Network network{simulator};
  cluster::Host io_host{simulator, HostId{1}};
  cluster::Host worker_a{simulator, HostId{2}};
  cluster::Host worker_b{simulator, HostId{3}};

  engine::Engine engine{simulator, network, HostId{100}, {}, /*seed=*/42};
  engine.add_host(io_host);
  engine.add_host(worker_a);
  engine.add_host(worker_b);

  // 2. The pub/sub service: 2 AP, 4 M, 2 EP slices; plain-text filtering.
  pubsub::StreamHubParams params;
  params.source_slices = 1;
  params.ap_slices = 2;
  params.m_slices = 4;
  params.ep_slices = 2;
  params.sink_slices = 1;
  params.matcher_factory = [](std::size_t) {
    return std::make_unique<filter::CountingIndexMatcher>();
  };
  pubsub::StreamHub hub{engine, params};
  hub.deploy({
      {"source", {HostId{1}}},
      {"sink", {HostId{1}}},
      {"AP", {HostId{2}}},
      {"M", {HostId{2}, HostId{3}}},
      {"EP", {HostId{3}}},
  });

  // 3. Subscriptions: interest as ranges over two attributes, e.g.
  //    (price, volume). Subscriber 7 wants price in [0.2, 0.6] & any volume.
  auto subscribe = [&](std::uint64_t id, std::uint64_t subscriber,
                       filter::Range price, filter::Range volume) {
    filter::Subscription sub;
    sub.id = SubscriptionId{id};
    sub.subscriber = SubscriberId{subscriber};
    sub.predicates = {price, volume};
    hub.subscribe(filter::AnySubscription{sub});
  };
  subscribe(1, 7, {0.2, 0.6}, {0.0, 1.0});
  subscribe(2, 8, {0.5, 0.9}, {0.4, 1.0});
  subscribe(3, 9, {0.0, 0.1}, {0.0, 0.2});
  simulator.run_until(simulator.now() + seconds(1));
  std::printf("stored subscriptions: %zu\n", hub.stored_subscriptions());

  // 4. Publications: attribute vectors. Each is matched against every
  //    stored subscription; matching subscribers get one notification.
  auto publish = [&](std::uint64_t id, double price, double volume) {
    filter::Publication pub;
    pub.id = PublicationId{id};
    pub.attributes = {price, volume};
    hub.publish(filter::AnyPublication{pub});
  };
  publish(1, 0.55, 0.5);  // matches subscribers 7 and 8
  publish(2, 0.05, 0.1);  // matches subscriber 9
  publish(3, 0.95, 0.0);  // matches nobody

  simulator.run_until(simulator.now() + seconds(2));

  // 5. Results: the sink collected every notification with its delay.
  const auto& delays = hub.collector()->delays_ms();
  std::printf("publications completed: %llu\n",
              static_cast<unsigned long long>(
                  hub.collector()->publications_completed()));
  std::printf("notifications sent:     %llu (expected 3)\n",
              static_cast<unsigned long long>(hub.collector()->notifications()));
  std::printf("delay min / max:        %.0f / %.0f ms\n",
              delays.percentile(0), delays.percentile(100));
  return 0;
}
