// Encrypted pub/sub on an untrusted cloud (the paper's headline scenario).
//
// Trusted clients hold the ASPE key: they encrypt subscriptions and
// publications before handing them to the engine. The brokers (M operator
// slices) match ciphertexts against ciphertexts — they never see attribute
// values or predicate bounds — yet notifications are exactly the ones a
// plaintext engine would produce, which this example verifies.
//
// Run: ./build/examples/encrypted_cloud
#include <cstdio>
#include <vector>

#include "cluster/host.hpp"
#include "engine/engine.hpp"
#include "filter/aspe.hpp"
#include "filter/matcher.hpp"
#include "net/network.hpp"
#include "pubsub/streamhub.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace esh;
  constexpr std::size_t kSubscriptions = 400;
  constexpr int kPublications = 25;

  sim::Simulator simulator;
  net::Network network{simulator};
  std::vector<std::unique_ptr<cluster::Host>> hosts;
  engine::Engine engine{simulator, network, HostId{100}, {}, 1};
  for (std::uint64_t h = 1; h <= 4; ++h) {
    hosts.push_back(
        std::make_unique<cluster::Host>(simulator, HostId{h}));
    engine.add_host(*hosts.back());
  }

  // Client side: the ASPE key never leaves this scope's "trust domain".
  workload::WorkloadParams wl{4, 0.05, 99};
  workload::EncryptedWorkload client{wl};
  workload::PlainWorkload ground_truth{wl};
  std::printf("ASPE key: d = %zu attributes, lifted dimension m = %zu\n",
              client.key().dimensions(), client.key().lifted_size());

  // Broker side: AspeMatcher works purely on ciphertexts.
  pubsub::StreamHubParams params;
  params.source_slices = 1;
  params.ap_slices = 2;
  params.m_slices = 4;
  params.ep_slices = 2;
  params.sink_slices = 1;
  params.matcher_factory = [](std::size_t) {
    return std::make_unique<filter::AspeMatcher>();
  };
  pubsub::StreamHub hub{engine, params};
  std::vector<HostId> workers{HostId{2}, HostId{3}, HostId{4}};
  hub.deploy({
      {"source", {HostId{1}}},
      {"sink", {HostId{1}}},
      {"AP", workers},
      {"M", workers},
      {"EP", workers},
  });

  // Store encrypted subscriptions.
  std::vector<filter::Subscription> plain_subs;
  for (std::uint64_t i = 0; i < kSubscriptions; ++i) {
    plain_subs.push_back(ground_truth.subscription(i));
    const auto encrypted = client.subscription(i);
    if (i == 0) {
      std::printf("ciphertext subscription size: %zu bytes (plain: %zu)\n",
                  encrypted.bytes(),
                  24 + plain_subs[0].predicates.size() * 16);
    }
    hub.subscribe(filter::AnySubscription{encrypted});
  }
  simulator.run_until(simulator.now() + seconds(5));
  std::printf("stored encrypted subscriptions: %zu\n",
              hub.stored_subscriptions());

  // Publish encrypted events; track what a plaintext engine would notify.
  std::uint64_t expected = 0;
  for (int p = 0; p < kPublications; ++p) {
    filter::Publication plain_pub;
    const auto encrypted = client.next_publication(&plain_pub);
    for (const auto& sub : plain_subs) {
      if (sub.matches(plain_pub)) ++expected;
    }
    hub.publish(filter::AnyPublication{encrypted});
    simulator.run_until(simulator.now() + millis(300));
  }
  simulator.run_until(simulator.now() + seconds(3));

  const auto got = hub.collector()->notifications();
  std::printf("notifications: %llu (plaintext ground truth: %llu) -> %s\n",
              static_cast<unsigned long long>(got),
              static_cast<unsigned long long>(expected),
              got == expected ? "EXACT MATCH" : "MISMATCH");
  std::printf("median notification delay: %.0f ms\n",
              hub.collector()->delays_ms().percentile(50));
  return got == expected ? 0 : 1;
}
